//! The analytic round engine.
//!
//! Uses the rotation-index lemma (Lemma 1) to compute the end-of-round
//! permutation in O(n), and the collision-cascade formula (Proposition 4) to
//! compute every agent's first-collision distance in O(n log n). All
//! arithmetic is exact (integer ticks).
//!
//! First collisions are only defined here for rounds in which **every**
//! agent moves (the basic and perceptive models); for rounds containing idle
//! agents the analytic engine reports `None` for every agent and the
//! event-driven engine ([`crate::events`]) can be consulted instead. This is
//! sufficient for the paper's algorithms because `coll()` is only available
//! in the perceptive model, which does not allow idling.

use crate::config::RingConfig;
use crate::direction::ObjectiveDirection;
use crate::geometry::ArcLength;
use crate::rotation::{rotation_index, RotationIndex};

/// Result of analytically executing one round.
#[derive(Clone, Debug)]
pub struct AnalyticRound {
    /// Rotation index of the round.
    pub rotation: RotationIndex,
    /// For each *agent*, the objective clockwise distance between its start
    /// and end position (zero iff the rotation index is zero).
    pub cw_displacement: Vec<ArcLength>,
    /// For each *agent*, the distance travelled until its first collision,
    /// or `None` if the agent never collides (or the round contains idle
    /// agents, for which the analytic engine does not model collisions).
    pub first_collision: Vec<Option<ArcLength>>,
    /// The new slot of each agent after the round.
    pub new_slot_of_agent: Vec<usize>,
}

/// Reusable scratch space for [`AnalyticEngine::execute_into`]: all of the
/// per-round vectors of [`AnalyticRound`] plus the engine's internal
/// work arrays, so a multi-round driver performs **zero** heap allocation
/// per round after the first.
#[derive(Clone, Debug, Default)]
pub struct AnalyticScratch {
    /// Per-agent objective clockwise displacement (output).
    pub cw_displacement: Vec<ArcLength>,
    /// Per-agent first-collision distance (output).
    pub first_collision: Vec<Option<ArcLength>>,
    /// Per-agent new slot (output).
    pub new_slot_of_agent: Vec<usize>,
    dir_at_slot: Vec<ObjectiveDirection>,
    cw_slots: Vec<usize>,
    acw_slots: Vec<usize>,
}

impl AnalyticScratch {
    /// Creates empty scratch space (vectors grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        self.cw_displacement.clear();
        self.cw_displacement.resize(n, ArcLength::ZERO);
        self.first_collision.clear();
        self.first_collision.resize(n, None);
        self.new_slot_of_agent.clear();
        self.new_slot_of_agent.resize(n, 0);
    }
}

/// Stateless analytic engine.
///
/// The engine is deliberately trivial to construct; it exists as a type so
/// that benchmarks can name it and so that alternative engines (the
/// event-driven one) can be swapped in behind the same [`crate::state::RingState`]
/// interface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalyticEngine;

impl AnalyticEngine {
    /// Creates a new engine.
    pub fn new() -> Self {
        AnalyticEngine
    }

    /// Executes one round.
    ///
    /// * `config` — the ground-truth configuration (initial slot positions).
    /// * `slot_of_agent` — the slot currently occupied by each agent.
    /// * `directions` — the objective direction chosen by each agent.
    ///
    /// # Panics
    ///
    /// Panics if the slices have inconsistent lengths (the caller,
    /// [`crate::state::RingState`], validates its inputs).
    pub fn execute(
        &self,
        config: &RingConfig,
        slot_of_agent: &[usize],
        directions: &[ObjectiveDirection],
    ) -> AnalyticRound {
        let mut scratch = AnalyticScratch::new();
        let rotation = self.execute_into(config, slot_of_agent, directions, &mut scratch);
        AnalyticRound {
            rotation,
            cw_displacement: scratch.cw_displacement,
            first_collision: scratch.first_collision,
            new_slot_of_agent: scratch.new_slot_of_agent,
        }
    }

    /// Executes one round into caller-owned scratch space — the zero-alloc
    /// variant of [`AnalyticEngine::execute`]. After the scratch vectors
    /// have grown to the ring size once, subsequent calls allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if the slices have inconsistent lengths.
    pub fn execute_into(
        &self,
        config: &RingConfig,
        slot_of_agent: &[usize],
        directions: &[ObjectiveDirection],
        scratch: &mut AnalyticScratch,
    ) -> RotationIndex {
        let n = config.len();
        assert_eq!(slot_of_agent.len(), n);
        assert_eq!(directions.len(), n);
        scratch.reset(n);

        let rotation = rotation_index(directions);
        let r = rotation.shift;

        for ((&slot, slot_out), disp_out) in slot_of_agent
            .iter()
            .zip(&mut scratch.new_slot_of_agent)
            .zip(&mut scratch.cw_displacement)
        {
            let new_slot = (slot + r) % n;
            *slot_out = new_slot;
            *disp_out = config.cw_arc(slot, new_slot);
        }

        if directions.iter().all(|d| d.is_moving()) {
            self.first_collisions(config, slot_of_agent, directions, scratch);
        }
        rotation
    }

    /// Computes every agent's first-collision distance for an all-moving
    /// round (Proposition 4: an agent's first collision happens after it has
    /// travelled half the arc separating it from the nearest agent ahead of
    /// it — in its direction of travel — that moves in the opposite
    /// direction). Writes into `scratch.first_collision`.
    fn first_collisions(
        &self,
        config: &RingConfig,
        slot_of_agent: &[usize],
        directions: &[ObjectiveDirection],
        scratch: &mut AnalyticScratch,
    ) {
        let n = config.len();

        // Direction of the agent sitting at each slot.
        scratch.dir_at_slot.clear();
        scratch.dir_at_slot.resize(n, ObjectiveDirection::Idle);
        for agent in 0..n {
            scratch.dir_at_slot[slot_of_agent[agent]] = directions[agent];
        }

        // Sorted slot indices of clockwise and anticlockwise movers.
        scratch.cw_slots.clear();
        scratch.acw_slots.clear();
        for (s, dir) in scratch.dir_at_slot.iter().enumerate() {
            match dir {
                ObjectiveDirection::Clockwise => scratch.cw_slots.push(s),
                ObjectiveDirection::Anticlockwise => scratch.acw_slots.push(s),
                ObjectiveDirection::Idle => {}
            }
        }

        if scratch.cw_slots.is_empty() || scratch.acw_slots.is_empty() {
            // Everybody moves the same way: no collisions at all.
            return;
        }

        for agent in 0..n {
            let slot = slot_of_agent[agent];
            let coll = match directions[agent] {
                ObjectiveDirection::Clockwise => {
                    // Nearest anticlockwise mover strictly ahead (clockwise).
                    let target = next_strictly_after(&scratch.acw_slots, slot, n);
                    config.cw_arc(slot, target).half()
                }
                ObjectiveDirection::Anticlockwise => {
                    // Nearest clockwise mover strictly behind (anticlockwise).
                    let target = prev_strictly_before(&scratch.cw_slots, slot, n);
                    config.cw_arc(target, slot).half()
                }
                ObjectiveDirection::Idle => unreachable!("all-moving round"),
            };
            scratch.first_collision[agent] = Some(coll);
        }
    }
}

/// Smallest element of the (sorted, nonempty) cyclic set `sorted` that is
/// strictly after `slot` in clockwise order.
fn next_strictly_after(sorted: &[usize], slot: usize, _n: usize) -> usize {
    match sorted.binary_search(&(slot + 1)) {
        Ok(i) => sorted[i],
        Err(i) => {
            if i < sorted.len() {
                sorted[i]
            } else {
                sorted[0]
            }
        }
    }
}

/// Largest element of the (sorted, nonempty) cyclic set `sorted` that is
/// strictly before `slot` in clockwise order.
fn prev_strictly_before(sorted: &[usize], slot: usize, _n: usize) -> usize {
    match sorted.binary_search(&slot) {
        Ok(i) | Err(i) => {
            if i > 0 {
                sorted[i - 1]
            } else {
                *sorted.last().expect("nonempty")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;
    use crate::geometry::Point;
    use ObjectiveDirection::{Anticlockwise as A, Clockwise as C, Idle as I};

    fn config_with_positions(ticks: &[u64]) -> RingConfig {
        RingConfig::builder(ticks.len())
            .explicit_positions(ticks.iter().copied().map(Point::from_ticks))
            .build()
            .unwrap()
    }

    #[test]
    fn all_clockwise_round_has_no_collisions_and_no_displacement() {
        let config = config_with_positions(&[0, 100, 220, 400, 900]);
        let slots: Vec<usize> = (0..5).collect();
        let round = AnalyticEngine::new().execute(&config, &slots, &[C; 5]);
        assert!(round.rotation.is_zero());
        assert!(round.cw_displacement.iter().all(|d| d.is_zero()));
        assert!(round.first_collision.iter().all(|c| c.is_none()));
        assert_eq!(round.new_slot_of_agent, slots);
    }

    #[test]
    fn single_anticlockwise_agent_rotates_everyone() {
        let config = config_with_positions(&[0, 100, 220, 400, 900]);
        let slots: Vec<usize> = (0..5).collect();
        let dirs = [C, C, C, C, A];
        let round = AnalyticEngine::new().execute(&config, &slots, &dirs);
        // r = (4 - 1) mod 5 = 3.
        assert_eq!(round.rotation.shift, 3);
        assert_eq!(round.new_slot_of_agent, vec![3, 4, 0, 1, 2]);
        // Agent 0 ends at slot 3 (tick 400): displacement 400.
        assert_eq!(round.cw_displacement[0].ticks(), 400);
        // Agent 4 (tick 900) ends at slot 2 (tick 220): cw distance wraps.
        assert_eq!(
            round.cw_displacement[4].ticks(),
            config.cw_arc(4, 2).ticks()
        );
    }

    #[test]
    fn first_collision_matches_proposition_4() {
        // Agents at 0, 100, 220, 400, 900; agent 3 (tick 400) moves
        // anticlockwise, everyone else clockwise.
        let config = config_with_positions(&[0, 100, 220, 400, 900]);
        let slots: Vec<usize> = (0..5).collect();
        let dirs = [C, C, C, A, C];
        let round = AnalyticEngine::new().execute(&config, &slots, &dirs);

        // Agent 0 moves clockwise; the nearest anticlockwise mover ahead is
        // at tick 400, so it collides after (400 - 0)/2 = 200.
        assert_eq!(round.first_collision[0].unwrap().ticks(), 200);
        // Agent 2 (tick 220) collides after (400 - 220)/2 = 90.
        assert_eq!(round.first_collision[2].unwrap().ticks(), 90);
        // Agent 3 moves anticlockwise; the nearest clockwise mover behind is
        // at tick 220, so it also collides after 90.
        assert_eq!(round.first_collision[3].unwrap().ticks(), 90);
        // Agent 4 (tick 900) moves clockwise; nearest anticlockwise mover
        // ahead (wrapping) is at tick 400: arc = (400 + CIRC - 900) mod CIRC.
        let expected = config.cw_arc(4, 3).half();
        assert_eq!(round.first_collision[4].unwrap(), expected);
    }

    #[test]
    fn idle_rounds_have_no_analytic_collisions_but_correct_rotation() {
        let config = config_with_positions(&[0, 100, 220, 400, 900]);
        let slots: Vec<usize> = (0..5).collect();
        let dirs = [C, I, I, I, I];
        let round = AnalyticEngine::new().execute(&config, &slots, &dirs);
        assert_eq!(round.rotation.shift, 1);
        assert!(round.first_collision.iter().all(|c| c.is_none()));
        assert_eq!(round.new_slot_of_agent, vec![1, 2, 3, 4, 0]);
    }

    #[test]
    fn displacement_uses_current_slots_not_agent_ids() {
        let config = config_with_positions(&[0, 100, 220, 400, 900]);
        // Agents already rotated by 2: agent i occupies slot i+2.
        let slots: Vec<usize> = (0..5).map(|i| (i + 2) % 5).collect();
        let dirs = [C, C, C, C, A];
        let round = AnalyticEngine::new().execute(&config, &slots, &dirs);
        assert_eq!(round.rotation.shift, 3);
        for (agent, &slot) in slots.iter().enumerate() {
            let expected = config.cw_arc(slot, (slot + 3) % 5);
            assert_eq!(round.cw_displacement[agent], expected);
        }
    }
}
