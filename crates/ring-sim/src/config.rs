//! Ring configurations: the hidden ground truth of an experiment.
//!
//! A [`RingConfig`] fixes the number of agents, their initial positions on
//! the circle and their (private) chiralities. Agents are indexed
//! `0..n` in objective clockwise order of their initial positions; agent `i`
//! initially occupies *slot* `i`. This ordering is never disclosed to the
//! agents — it is the implicit periodic order `a_1, …, a_n` of the paper.

use crate::direction::Chirality;
use crate::error::RingError;
use crate::geometry::{ArcLength, Point, CIRCUMFERENCE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Minimum supported ring size. The paper assumes `n > 4` throughout.
pub const MIN_AGENTS: usize = 5;

/// The immutable ground truth of a ring deployment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingConfig {
    positions: Vec<Point>,
    chirality: Vec<Chirality>,
    gaps: Vec<ArcLength>,
}

impl RingConfig {
    /// Starts building a configuration for `n` agents.
    pub fn builder(n: usize) -> RingConfigBuilder {
        RingConfigBuilder::new(n)
    }

    /// A convenient default configuration: `n` agents at slightly perturbed
    /// but reproducible positions, all physically aligned with the objective
    /// clockwise direction.
    ///
    /// # Errors
    ///
    /// Returns an error if `n < MIN_AGENTS`.
    pub fn evenly_spaced(n: usize) -> Result<Self, RingError> {
        RingConfigBuilder::new(n).build()
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the configuration is empty (never true for valid configs).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Initial position of the slot (equivalently, of the agent that starts
    /// there).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= n`.
    pub fn position(&self, slot: usize) -> Point {
        self.positions[slot]
    }

    /// All initial positions in clockwise slot order.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Physical chirality of an agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent >= n`.
    pub fn chirality(&self, agent: usize) -> Chirality {
        self.chirality[agent]
    }

    /// All chirality assignments in agent order.
    pub fn chiralities(&self) -> &[Chirality] {
        &self.chirality
    }

    /// The clockwise gap between slot `i` and slot `i + 1` (cyclically).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= n`.
    pub fn gap(&self, slot: usize) -> ArcLength {
        self.gaps[slot]
    }

    /// All gaps; `gaps()[i]` is the clockwise distance from slot `i` to slot
    /// `(i + 1) % n`. They sum to exactly one circumference.
    pub fn gaps(&self) -> &[ArcLength] {
        &self.gaps
    }

    /// The clockwise arc length from slot `from` to slot `to` (0 if equal).
    pub fn cw_arc(&self, from: usize, to: usize) -> ArcLength {
        self.positions[from].cw_distance_to(self.positions[to])
    }

    /// Number of agents whose chirality is [`Chirality::Aligned`].
    pub fn aligned_count(&self) -> usize {
        self.chirality.iter().filter(|c| c.is_aligned()).count()
    }
}

/// Builder for [`RingConfig`] values.
///
/// ```
/// use ring_sim::prelude::*;
///
/// # fn main() -> Result<(), RingError> {
/// let config = RingConfig::builder(8)
///     .random_positions(42)
///     .alternating_chirality()
///     .build()?;
/// assert_eq!(config.len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RingConfigBuilder {
    n: usize,
    positions: PositionSpec,
    chirality: ChiralitySpec,
}

#[derive(Clone, Debug)]
enum PositionSpec {
    Even,
    Random { seed: u64 },
    Explicit(Vec<Point>),
}

#[derive(Clone, Debug)]
enum ChiralitySpec {
    AllAligned,
    Alternating,
    Random { seed: u64 },
    Explicit(Vec<Chirality>),
}

impl RingConfigBuilder {
    /// Creates a builder for `n` agents with evenly spaced positions and all
    /// agents aligned.
    pub fn new(n: usize) -> Self {
        RingConfigBuilder {
            n,
            positions: PositionSpec::Even,
            chirality: ChiralitySpec::AllAligned,
        }
    }

    /// Places the agents at equal distances around the circle.
    pub fn even_positions(mut self) -> Self {
        self.positions = PositionSpec::Even;
        self
    }

    /// Places the agents at reproducibly random, distinct, even-tick
    /// positions.
    pub fn random_positions(mut self, seed: u64) -> Self {
        self.positions = PositionSpec::Random { seed };
        self
    }

    /// Uses the supplied positions verbatim (they will be sorted into
    /// clockwise order).
    pub fn explicit_positions<I>(mut self, positions: I) -> Self
    where
        I: IntoIterator<Item = Point>,
    {
        self.positions = PositionSpec::Explicit(positions.into_iter().collect());
        self
    }

    /// Gives every agent the objective clockwise direction as its "right".
    pub fn aligned_chirality(mut self) -> Self {
        self.chirality = ChiralitySpec::AllAligned;
        self
    }

    /// Alternates chirality around the ring (agent 0 aligned, agent 1
    /// reversed, …) — the worst case for symmetry-breaking protocols.
    pub fn alternating_chirality(mut self) -> Self {
        self.chirality = ChiralitySpec::Alternating;
        self
    }

    /// Assigns chirality uniformly at random (reproducibly).
    pub fn random_chirality(mut self, seed: u64) -> Self {
        self.chirality = ChiralitySpec::Random { seed };
        self
    }

    /// Uses the supplied chirality assignment verbatim (agent order).
    pub fn explicit_chirality<I>(mut self, chirality: I) -> Self
    where
        I: IntoIterator<Item = Chirality>,
    {
        self.chirality = ChiralitySpec::Explicit(chirality.into_iter().collect());
        self
    }

    /// Builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if `n < MIN_AGENTS`, if explicit positions are
    /// duplicated, lie on odd ticks or have the wrong count, or if the
    /// explicit chirality assignment has the wrong count.
    pub fn build(&self) -> Result<RingConfig, RingError> {
        let n = self.n;
        if n < MIN_AGENTS {
            return Err(RingError::TooFewAgents { n, min: MIN_AGENTS });
        }

        let mut positions = match &self.positions {
            PositionSpec::Even => even_positions(n),
            PositionSpec::Random { seed } => random_positions(n, *seed)?,
            PositionSpec::Explicit(p) => {
                if p.len() != n {
                    return Err(RingError::LengthMismatch {
                        what: "positions",
                        got: p.len(),
                        expected: n,
                    });
                }
                p.clone()
            }
        };
        positions.sort();
        for w in positions.windows(2) {
            if w[0] == w[1] {
                return Err(RingError::DuplicatePosition {
                    ticks: w[0].ticks(),
                });
            }
        }
        for p in &positions {
            if p.ticks() % 2 != 0 {
                return Err(RingError::OddPosition { ticks: p.ticks() });
            }
        }

        let chirality = match &self.chirality {
            ChiralitySpec::AllAligned => vec![Chirality::Aligned; n],
            ChiralitySpec::Alternating => (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        Chirality::Aligned
                    } else {
                        Chirality::Reversed
                    }
                })
                .collect(),
            ChiralitySpec::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..n)
                    .map(|_| {
                        if rng.gen::<bool>() {
                            Chirality::Aligned
                        } else {
                            Chirality::Reversed
                        }
                    })
                    .collect()
            }
            ChiralitySpec::Explicit(c) => {
                if c.len() != n {
                    return Err(RingError::LengthMismatch {
                        what: "chirality flags",
                        got: c.len(),
                        expected: n,
                    });
                }
                c.clone()
            }
        };

        let gaps = (0..n)
            .map(|i| positions[i].cw_distance_to(positions[(i + 1) % n]))
            .collect();

        Ok(RingConfig {
            positions,
            chirality,
            gaps,
        })
    }
}

fn even_positions(n: usize) -> Vec<Point> {
    // Evenly spaced on even ticks; the stride is rounded down to an even
    // number so that every position is even.
    let stride = (CIRCUMFERENCE / n as u64) & !1;
    (0..n as u64)
        .map(|i| Point::from_ticks(i * stride))
        .collect()
}

fn random_positions(n: usize, seed: u64) -> Result<Vec<Point>, RingError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    let mut attempts = 0usize;
    while set.len() < n {
        attempts += 1;
        if attempts > n * 1000 {
            return Err(RingError::PositionGeneration { n });
        }
        let t = rng.gen_range(0..CIRCUMFERENCE) & !1;
        set.insert(t);
    }
    Ok(set.into_iter().map(Point::from_ticks).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_sum_to_circumference() {
        let config = RingConfig::builder(9).random_positions(1).build().unwrap();
        let total: u64 = config.gaps().iter().map(|g| g.ticks()).sum();
        assert_eq!(total, CIRCUMFERENCE);
        assert_eq!(config.gaps().len(), 9);
    }

    #[test]
    fn even_positions_are_sorted_distinct_even() {
        let config = RingConfig::evenly_spaced(7).unwrap();
        let pos = config.positions();
        for w in pos.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(pos.iter().all(|p| p.ticks() % 2 == 0));
    }

    #[test]
    fn too_few_agents_is_rejected() {
        assert_eq!(
            RingConfig::builder(4).build().unwrap_err(),
            RingError::TooFewAgents {
                n: 4,
                min: MIN_AGENTS
            }
        );
    }

    #[test]
    fn explicit_positions_are_validated() {
        let dup = vec![Point::from_ticks(2); 5];
        assert!(matches!(
            RingConfig::builder(5).explicit_positions(dup).build(),
            Err(RingError::DuplicatePosition { .. })
        ));

        let odd = vec![
            Point::from_ticks(1),
            Point::from_ticks(4),
            Point::from_ticks(6),
            Point::from_ticks(8),
            Point::from_ticks(10),
        ];
        assert!(matches!(
            RingConfig::builder(5).explicit_positions(odd).build(),
            Err(RingError::OddPosition { ticks: 1 })
        ));

        let short = vec![Point::from_ticks(2), Point::from_ticks(4)];
        assert!(matches!(
            RingConfig::builder(5).explicit_positions(short).build(),
            Err(RingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn chirality_specs() {
        let c = RingConfig::builder(6)
            .alternating_chirality()
            .build()
            .unwrap();
        assert_eq!(c.aligned_count(), 3);
        assert_eq!(c.chirality(0), Chirality::Aligned);
        assert_eq!(c.chirality(1), Chirality::Reversed);

        let c = RingConfig::builder(6)
            .explicit_chirality(vec![Chirality::Reversed; 6])
            .build()
            .unwrap();
        assert_eq!(c.aligned_count(), 0);

        assert!(matches!(
            RingConfig::builder(6)
                .explicit_chirality(vec![Chirality::Aligned; 2])
                .build(),
            Err(RingError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn random_positions_are_reproducible() {
        let a = RingConfig::builder(16).random_positions(5).build().unwrap();
        let b = RingConfig::builder(16).random_positions(5).build().unwrap();
        assert_eq!(a, b);
        let c = RingConfig::builder(16).random_positions(6).build().unwrap();
        assert_ne!(a, c);
    }
}
