//! Event-driven reference simulator.
//!
//! Simulates every collision of a round explicitly, in `f64` arithmetic.
//! Agents are points on the unit circle moving at speed 1 (or 0 when idle);
//! when two agents meet they exchange velocities, which covers all three
//! interaction cases of the model (bounce between two movers, motion
//! transfer onto an idle agent).
//!
//! The event engine is slower (`O(n)` work per event, up to `O(n²)` events
//! per round) and approximate (`f64`), so the protocol executor uses the
//! exact [`crate::analytic::AnalyticEngine`]; the event engine serves as the
//! ground truth that the analytic shortcuts are validated against, and as a
//! tool for visualising full trajectories.

use crate::config::RingConfig;
use crate::direction::ObjectiveDirection;
use serde::{Deserialize, Serialize};

/// A single collision between two agents.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollisionEvent {
    /// Time within the round, in `[0, 1)`.
    pub time: f64,
    /// Position on the circle (fraction in `[0, 1)`).
    pub position: f64,
    /// The two agents involved (agent indices, not slots).
    pub agents: (usize, usize),
}

/// Full trajectory information for one simulated round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trajectory {
    /// Final position (fraction of the circle) of each agent.
    pub final_positions: Vec<f64>,
    /// Clockwise displacement (fraction) of each agent over the round.
    pub cw_displacement: Vec<f64>,
    /// Path distance travelled by each agent until its first collision,
    /// `None` if the agent was never involved in a collision.
    pub first_collision: Vec<Option<f64>>,
    /// Every collision of the round, in chronological order.
    pub collisions: Vec<CollisionEvent>,
}

/// The event-driven engine.
#[derive(Clone, Copy, Debug)]
pub struct EventEngine {
    /// Safety bound on the number of processed events per round.
    pub max_events: usize,
}

impl Default for EventEngine {
    fn default() -> Self {
        EventEngine {
            max_events: 1 << 22,
        }
    }
}

impl EventEngine {
    /// Creates an engine with the default event bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates one full round.
    ///
    /// * `config` — ground-truth configuration.
    /// * `slot_of_agent` — slot currently occupied by each agent.
    /// * `directions` — objective direction of each agent.
    ///
    /// # Panics
    ///
    /// Panics if the inputs have inconsistent lengths or if the event bound
    /// is exceeded (which would indicate a bug, as a round has at most
    /// `O(n²)` collisions).
    pub fn simulate(
        &self,
        config: &RingConfig,
        slot_of_agent: &[usize],
        directions: &[ObjectiveDirection],
    ) -> Trajectory {
        let n = config.len();
        assert_eq!(slot_of_agent.len(), n);
        assert_eq!(directions.len(), n);

        // Ring order = slot order. `order[k]` is the agent currently at the
        // k-th slot.
        let mut agent_at_slot = vec![usize::MAX; n];
        for agent in 0..n {
            agent_at_slot[slot_of_agent[agent]] = agent;
        }

        // State indexed by ring-order position k.
        let mut pos: Vec<f64> = (0..n).map(|k| config.position(k).as_fraction()).collect();
        let start_pos_of_agent: Vec<f64> = (0..n)
            .map(|agent| config.position(slot_of_agent[agent]).as_fraction())
            .collect();
        let mut vel: Vec<f64> = (0..n)
            .map(|k| f64::from(directions[agent_at_slot[k]].velocity()))
            .collect();
        let agent: Vec<usize> = agent_at_slot;

        let mut first_collision: Vec<Option<f64>> = vec![None; n];
        let mut travelled: Vec<f64> = vec![0.0; n];
        let mut collisions = Vec::new();

        let mut t = 0.0f64;
        let mut events = 0usize;
        loop {
            // Find the earliest upcoming collision among adjacent pairs.
            let mut best: Option<(f64, usize)> = None;
            for k in 0..n {
                let j = (k + 1) % n;
                let closing = vel[k] - vel[j];
                if closing <= 0.0 {
                    continue;
                }
                let gap = (pos[j] - pos[k]).rem_euclid(1.0);
                let dt = gap / closing;
                if t + dt <= 1.0 + 1e-12 {
                    match best {
                        Some((bt, _)) if bt <= dt => {}
                        _ => best = Some((dt, k)),
                    }
                }
            }

            let Some((dt, k)) = best else { break };
            let j = (k + 1) % n;

            // Advance everyone to the collision time.
            for i in 0..n {
                pos[i] = (pos[i] + vel[i] * dt).rem_euclid(1.0);
                travelled[agent[i]] += vel[i].abs() * dt;
            }
            t += dt;

            // Record the collision for both participants.
            let (a, b) = (agent[k], agent[j]);
            let here = pos[k];
            collisions.push(CollisionEvent {
                time: t,
                position: here,
                agents: (a, b),
            });
            if first_collision[a].is_none() {
                first_collision[a] = Some(travelled[a]);
            }
            if first_collision[b].is_none() {
                first_collision[b] = Some(travelled[b]);
            }

            // Exchange velocities (covers bounce and motion transfer).
            vel.swap(k, j);

            events += 1;
            assert!(
                events <= self.max_events,
                "event bound exceeded: {events} events"
            );
        }

        // Advance to the end of the round.
        let dt = 1.0 - t;
        if dt > 0.0 {
            for i in 0..n {
                pos[i] = (pos[i] + vel[i] * dt).rem_euclid(1.0);
                travelled[agent[i]] += vel[i].abs() * dt;
            }
        }

        let mut final_positions = vec![0.0; n];
        for k in 0..n {
            final_positions[agent[k]] = pos[k];
        }
        let cw_displacement: Vec<f64> = (0..n)
            .map(|a| (final_positions[a] - start_pos_of_agent[a]).rem_euclid(1.0))
            .collect();

        Trajectory {
            final_positions,
            cw_displacement,
            first_collision,
            collisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::AnalyticEngine;
    use crate::config::RingConfig;
    use crate::geometry::Point;
    use ObjectiveDirection::{Anticlockwise as A, Clockwise as C, Idle as I};

    fn config_with_positions(ticks: &[u64]) -> RingConfig {
        RingConfig::builder(ticks.len())
            .explicit_positions(ticks.iter().copied().map(Point::from_ticks))
            .build()
            .unwrap()
    }

    const EPS: f64 = 1e-9;

    #[test]
    fn all_clockwise_round_returns_everyone_to_start() {
        let config = RingConfig::builder(6).random_positions(3).build().unwrap();
        let slots: Vec<usize> = (0..6).collect();
        let traj = EventEngine::new().simulate(&config, &slots, &[C; 6]);
        for agent in 0..6 {
            assert!(traj.cw_displacement[agent] < EPS || traj.cw_displacement[agent] > 1.0 - EPS);
            assert!(traj.first_collision[agent].is_none());
        }
        assert!(traj.collisions.is_empty());
    }

    #[test]
    fn two_approaching_agents_collide_at_midpoint_distance() {
        // Positions 0.0 and 0.25 (in ticks); 0 moves clockwise, 1 anticlockwise.
        let quarter = crate::geometry::CIRCUMFERENCE / 4;
        let config =
            config_with_positions(&[0, quarter, quarter * 2, quarter * 2 + 10, quarter * 3]);
        let slots: Vec<usize> = (0..5).collect();
        let dirs = [C, A, C, C, C];
        let traj = EventEngine::new().simulate(&config, &slots, &dirs);
        // Agents 0 and 1 approach over a gap of 1/4: first collision after 1/8.
        assert!((traj.first_collision[0].unwrap() - 0.125).abs() < EPS);
        assert!((traj.first_collision[1].unwrap() - 0.125).abs() < EPS);
    }

    #[test]
    fn event_engine_matches_analytic_engine_on_mixed_round() {
        let config = RingConfig::builder(9).random_positions(17).build().unwrap();
        let slots: Vec<usize> = (0..9).collect();
        let dirs = [C, A, C, A, A, C, C, A, C];
        let analytic = AnalyticEngine::new().execute(&config, &slots, &dirs);
        let traj = EventEngine::new().simulate(&config, &slots, &dirs);
        for agent in 0..9 {
            let expected = analytic.cw_displacement[agent].as_fraction();
            let got = traj.cw_displacement[agent];
            let diff = (expected - got)
                .abs()
                .min((expected - got).abs() - 1.0)
                .abs();
            assert!(
                (expected - got).abs() < 1e-6 || (1.0 - (expected - got).abs()) < 1e-6,
                "agent {agent}: expected {expected}, got {got} (diff {diff})"
            );
            let expected_coll = analytic.first_collision[agent].unwrap().as_fraction();
            let got_coll = traj.first_collision[agent].unwrap();
            assert!(
                (expected_coll - got_coll).abs() < 1e-6,
                "agent {agent}: first collision expected {expected_coll}, got {got_coll}"
            );
        }
    }

    #[test]
    fn idle_agents_transfer_motion() {
        // One clockwise mover, everyone else idle: rotation index 1, and the
        // mover's first collision is with its clockwise neighbour at the full
        // gap distance (relative speed 1).
        let config = config_with_positions(&[0, 1000, 3000, 7000, 15000]);
        let slots: Vec<usize> = (0..5).collect();
        let dirs = [C, I, I, I, I];
        let traj = EventEngine::new().simulate(&config, &slots, &dirs);
        let gap01 = config.gap(0).as_fraction();
        assert!((traj.first_collision[0].unwrap() - gap01).abs() < EPS);
        // The idle neighbour is hit without having moved.
        assert!(traj.first_collision[1].unwrap().abs() < EPS);
        // Rotation index 1: every agent ends at its clockwise neighbour's slot.
        let analytic = AnalyticEngine::new().execute(&config, &slots, &dirs);
        assert_eq!(analytic.rotation.shift, 1);
        for agent in 0..5 {
            let expected = analytic.cw_displacement[agent].as_fraction();
            let got = traj.cw_displacement[agent];
            assert!(
                (expected - got).abs() < 1e-6 || (1.0 - (expected - got).abs()) < 1e-6,
                "agent {agent}: expected {expected}, got {got}"
            );
        }
    }
}
