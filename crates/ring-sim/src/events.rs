//! Event-driven reference simulator.
//!
//! Simulates every collision of a round explicitly, in `f64` arithmetic.
//! Agents are points on the unit circle moving at speed 1 (or 0 when idle);
//! when two agents meet they exchange velocities, which covers all three
//! interaction cases of the model (bounce between two movers, motion
//! transfer onto an idle agent).
//!
//! The event engine is slower (`O(n)` work per event, up to `O(n²)` events
//! per round) and approximate (`f64`), so the protocol executor uses the
//! exact [`crate::analytic::AnalyticEngine`] on clean rings; the event
//! engine serves as the ground truth that the analytic shortcuts are
//! validated against, as the *reference executor for faulty runs* (which
//! exercise territory the analytic shortcuts were never validated on), and
//! as a tool for visualising full trajectories. Multi-round drivers reuse
//! one [`EventScratch`] across rounds via [`EventEngine::simulate_into`]
//! instead of paying the eight-vector allocation of
//! [`EventEngine::simulate`] per round.

use crate::config::RingConfig;
use crate::direction::ObjectiveDirection;
use serde::{Deserialize, Serialize};

/// A single collision between two agents.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CollisionEvent {
    /// Time within the round, in `[0, 1)`.
    pub time: f64,
    /// Position on the circle (fraction in `[0, 1)`).
    pub position: f64,
    /// The two agents involved (agent indices, not slots).
    pub agents: (usize, usize),
}

/// Full trajectory information for one simulated round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trajectory {
    /// Final position (fraction of the circle) of each agent.
    pub final_positions: Vec<f64>,
    /// Clockwise displacement (fraction) of each agent over the round.
    pub cw_displacement: Vec<f64>,
    /// Path distance travelled by each agent until its first collision,
    /// `None` if the agent was never involved in a collision.
    pub first_collision: Vec<Option<f64>>,
    /// Every collision of the round, in chronological order.
    pub collisions: Vec<CollisionEvent>,
}

/// The event-driven engine.
#[derive(Clone, Copy, Debug)]
pub struct EventEngine {
    /// Safety bound on the number of processed events per round.
    pub max_events: usize,
}

impl Default for EventEngine {
    fn default() -> Self {
        EventEngine {
            max_events: 1 << 22,
        }
    }
}

/// Reusable scratch arena for [`EventEngine::simulate_into`].
///
/// The event engine used to allocate eight vectors per simulated round;
/// now that it is the reference executor for faulty runs (which execute
/// every round through it), multi-round drivers hold one `EventScratch`
/// and reuse it — after the vectors reach the ring size, a round performs
/// no heap allocation beyond growth of the collision log.
#[derive(Clone, Debug, Default)]
pub struct EventScratch {
    /// Final position (fraction of the circle) of each agent, valid after
    /// a [`EventEngine::simulate_into`] call.
    pub final_positions: Vec<f64>,
    /// Clockwise displacement (fraction) of each agent over the round.
    pub cw_displacement: Vec<f64>,
    /// Path distance travelled by each agent until its first collision
    /// (`None` if never involved in one).
    pub first_collision: Vec<Option<f64>>,
    /// Every collision of the round, in chronological order.
    pub collisions: Vec<CollisionEvent>,
    agent_at_slot: Vec<usize>,
    pos: Vec<f64>,
    start_pos_of_agent: Vec<f64>,
    vel: Vec<f64>,
    travelled: Vec<f64>,
}

impl EventScratch {
    /// Creates an empty arena (vectors grow to the ring size on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the round's outputs out of the scratch as a [`Trajectory`],
    /// leaving empty output vectors behind.
    pub fn take_trajectory(&mut self) -> Trajectory {
        Trajectory {
            final_positions: std::mem::take(&mut self.final_positions),
            cw_displacement: std::mem::take(&mut self.cw_displacement),
            first_collision: std::mem::take(&mut self.first_collision),
            collisions: std::mem::take(&mut self.collisions),
        }
    }
}

/// Clears `vec` and refills it to `n` elements from `f` without
/// reallocating once capacity has been reached.
fn refill<T>(vec: &mut Vec<T>, n: usize, f: impl FnMut(usize) -> T) {
    vec.clear();
    vec.extend((0..n).map(f));
}

impl EventEngine {
    /// Creates an engine with the default event bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates one full round.
    ///
    /// * `config` — ground-truth configuration.
    /// * `slot_of_agent` — slot currently occupied by each agent.
    /// * `directions` — objective direction of each agent.
    ///
    /// # Panics
    ///
    /// Panics if the inputs have inconsistent lengths or if the event bound
    /// is exceeded (which would indicate a bug, as a round has at most
    /// `O(n²)` collisions).
    pub fn simulate(
        &self,
        config: &RingConfig,
        slot_of_agent: &[usize],
        directions: &[ObjectiveDirection],
    ) -> Trajectory {
        let mut scratch = EventScratch::new();
        self.simulate_into(config, slot_of_agent, directions, &mut scratch);
        scratch.take_trajectory()
    }

    /// Simulates one full round into a caller-owned [`EventScratch`] — the
    /// buffer-reusing variant of [`EventEngine::simulate`]. Outputs land in
    /// the scratch's public fields.
    ///
    /// # Panics
    ///
    /// Same as [`EventEngine::simulate`].
    pub fn simulate_into(
        &self,
        config: &RingConfig,
        slot_of_agent: &[usize],
        directions: &[ObjectiveDirection],
        scratch: &mut EventScratch,
    ) {
        let n = config.len();
        assert_eq!(slot_of_agent.len(), n);
        assert_eq!(directions.len(), n);

        // Ring order = slot order. `agent[k]` is the agent currently at the
        // k-th slot.
        refill(&mut scratch.agent_at_slot, n, |_| usize::MAX);
        for (agent, &slot) in slot_of_agent.iter().enumerate() {
            scratch.agent_at_slot[slot] = agent;
        }

        // State indexed by ring-order position k.
        refill(&mut scratch.pos, n, |k| config.position(k).as_fraction());
        refill(&mut scratch.start_pos_of_agent, n, |agent| {
            config.position(slot_of_agent[agent]).as_fraction()
        });
        refill(&mut scratch.vel, n, |k| {
            f64::from(directions[scratch.agent_at_slot[k]].velocity())
        });
        refill(&mut scratch.first_collision, n, |_| None);
        refill(&mut scratch.travelled, n, |_| 0.0);
        scratch.collisions.clear();
        let EventScratch {
            ref mut pos,
            ref mut vel,
            ref mut first_collision,
            ref mut travelled,
            ref mut collisions,
            ref agent_at_slot,
            ..
        } = *scratch;
        let agent = agent_at_slot;

        let mut t = 0.0f64;
        let mut events = 0usize;
        loop {
            // Find the earliest upcoming collision among adjacent pairs.
            let mut best: Option<(f64, usize)> = None;
            for k in 0..n {
                let j = (k + 1) % n;
                let closing = vel[k] - vel[j];
                if closing <= 0.0 {
                    continue;
                }
                let gap = (pos[j] - pos[k]).rem_euclid(1.0);
                let dt = gap / closing;
                if t + dt <= 1.0 + 1e-12 {
                    match best {
                        Some((bt, _)) if bt <= dt => {}
                        _ => best = Some((dt, k)),
                    }
                }
            }

            let Some((dt, k)) = best else { break };
            let j = (k + 1) % n;

            // Advance everyone to the collision time.
            for i in 0..n {
                pos[i] = (pos[i] + vel[i] * dt).rem_euclid(1.0);
                travelled[agent[i]] += vel[i].abs() * dt;
            }
            t += dt;

            // Record the collision for both participants.
            let (a, b) = (agent[k], agent[j]);
            let here = pos[k];
            collisions.push(CollisionEvent {
                time: t,
                position: here,
                agents: (a, b),
            });
            if first_collision[a].is_none() {
                first_collision[a] = Some(travelled[a]);
            }
            if first_collision[b].is_none() {
                first_collision[b] = Some(travelled[b]);
            }

            // Exchange velocities (covers bounce and motion transfer).
            vel.swap(k, j);

            events += 1;
            assert!(
                events <= self.max_events,
                "event bound exceeded: {events} events"
            );
        }

        // Advance to the end of the round.
        let dt = 1.0 - t;
        if dt > 0.0 {
            for i in 0..n {
                pos[i] = (pos[i] + vel[i] * dt).rem_euclid(1.0);
                travelled[agent[i]] += vel[i].abs() * dt;
            }
        }

        refill(&mut scratch.final_positions, n, |_| 0.0);
        for k in 0..n {
            scratch.final_positions[scratch.agent_at_slot[k]] = scratch.pos[k];
        }
        let EventScratch {
            ref mut cw_displacement,
            ref final_positions,
            ref start_pos_of_agent,
            ..
        } = *scratch;
        refill(cw_displacement, n, |a| {
            (final_positions[a] - start_pos_of_agent[a]).rem_euclid(1.0)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::AnalyticEngine;
    use crate::config::RingConfig;
    use crate::geometry::Point;
    use ObjectiveDirection::{Anticlockwise as A, Clockwise as C, Idle as I};

    fn config_with_positions(ticks: &[u64]) -> RingConfig {
        RingConfig::builder(ticks.len())
            .explicit_positions(ticks.iter().copied().map(Point::from_ticks))
            .build()
            .unwrap()
    }

    const EPS: f64 = 1e-9;

    #[test]
    fn all_clockwise_round_returns_everyone_to_start() {
        let config = RingConfig::builder(6).random_positions(3).build().unwrap();
        let slots: Vec<usize> = (0..6).collect();
        let traj = EventEngine::new().simulate(&config, &slots, &[C; 6]);
        for agent in 0..6 {
            assert!(traj.cw_displacement[agent] < EPS || traj.cw_displacement[agent] > 1.0 - EPS);
            assert!(traj.first_collision[agent].is_none());
        }
        assert!(traj.collisions.is_empty());
    }

    #[test]
    fn two_approaching_agents_collide_at_midpoint_distance() {
        // Positions 0.0 and 0.25 (in ticks); 0 moves clockwise, 1 anticlockwise.
        let quarter = crate::geometry::CIRCUMFERENCE / 4;
        let config =
            config_with_positions(&[0, quarter, quarter * 2, quarter * 2 + 10, quarter * 3]);
        let slots: Vec<usize> = (0..5).collect();
        let dirs = [C, A, C, C, C];
        let traj = EventEngine::new().simulate(&config, &slots, &dirs);
        // Agents 0 and 1 approach over a gap of 1/4: first collision after 1/8.
        assert!((traj.first_collision[0].unwrap() - 0.125).abs() < EPS);
        assert!((traj.first_collision[1].unwrap() - 0.125).abs() < EPS);
    }

    #[test]
    fn event_engine_matches_analytic_engine_on_mixed_round() {
        let config = RingConfig::builder(9).random_positions(17).build().unwrap();
        let slots: Vec<usize> = (0..9).collect();
        let dirs = [C, A, C, A, A, C, C, A, C];
        let analytic = AnalyticEngine::new().execute(&config, &slots, &dirs);
        let traj = EventEngine::new().simulate(&config, &slots, &dirs);
        for agent in 0..9 {
            let expected = analytic.cw_displacement[agent].as_fraction();
            let got = traj.cw_displacement[agent];
            let diff = (expected - got)
                .abs()
                .min((expected - got).abs() - 1.0)
                .abs();
            assert!(
                (expected - got).abs() < 1e-6 || (1.0 - (expected - got).abs()) < 1e-6,
                "agent {agent}: expected {expected}, got {got} (diff {diff})"
            );
            let expected_coll = analytic.first_collision[agent].unwrap().as_fraction();
            let got_coll = traj.first_collision[agent].unwrap();
            assert!(
                (expected_coll - got_coll).abs() < 1e-6,
                "agent {agent}: first collision expected {expected_coll}, got {got_coll}"
            );
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_simulation_round_for_round() {
        let config = RingConfig::builder(11)
            .random_positions(23)
            .build()
            .unwrap();
        let slots: Vec<usize> = (0..11).collect();
        let mut scratch = EventScratch::new();
        for round in 0..8u64 {
            let dirs: Vec<ObjectiveDirection> = (0..11)
                .map(|i| {
                    if (i as u64 + round).is_multiple_of(3) {
                        A
                    } else {
                        C
                    }
                })
                .collect();
            let fresh = EventEngine::new().simulate(&config, &slots, &dirs);
            EventEngine::new().simulate_into(&config, &slots, &dirs, &mut scratch);
            assert_eq!(scratch.final_positions, fresh.final_positions);
            assert_eq!(scratch.cw_displacement, fresh.cw_displacement);
            assert_eq!(scratch.first_collision, fresh.first_collision);
            assert_eq!(scratch.collisions, fresh.collisions);
        }
    }

    #[test]
    fn idle_agents_transfer_motion() {
        // One clockwise mover, everyone else idle: rotation index 1, and the
        // mover's first collision is with its clockwise neighbour at the full
        // gap distance (relative speed 1).
        let config = config_with_positions(&[0, 1000, 3000, 7000, 15000]);
        let slots: Vec<usize> = (0..5).collect();
        let dirs = [C, I, I, I, I];
        let traj = EventEngine::new().simulate(&config, &slots, &dirs);
        let gap01 = config.gap(0).as_fraction();
        assert!((traj.first_collision[0].unwrap() - gap01).abs() < EPS);
        // The idle neighbour is hit without having moved.
        assert!(traj.first_collision[1].unwrap().abs() < EPS);
        // Rotation index 1: every agent ends at its clockwise neighbour's slot.
        let analytic = AnalyticEngine::new().execute(&config, &slots, &dirs);
        assert_eq!(analytic.rotation.shift, 1);
        for agent in 0..5 {
            let expected = analytic.cw_displacement[agent].as_fraction();
            let got = traj.cw_displacement[agent];
            assert!(
                (expected - got).abs() < 1e-6 || (1.0 - (expected - got).abs()) < 1e-6,
                "agent {agent}: expected {expected}, got {got}"
            );
        }
    }
}
