//! # ring-sim
//!
//! Exact kinematic substrate for *bouncing mobile agents on a ring*, the
//! model studied in "Deterministic Symmetry Breaking in Ring Networks"
//! (Gąsieniec, Jurdziński, Martin, Stachowiak; ICDCS 2015).
//!
//! `n` point agents live on a circle of circumference 1 and act in
//! synchronised rounds of one unit of time. At the beginning of a round each
//! agent picks a direction — its own *right* (clockwise), its own *left*
//! (anticlockwise) or *idle* (lazy model only) — and then moves at unit
//! speed. Agents may not overpass: when two moving agents meet they bounce
//! (exchange velocities); when a moving agent meets an idle one the motion is
//! transferred. At the end of the round every agent observes
//!
//! * [`Observation::dist`] — the distance between its start and end position
//!   of the round, measured in the agent's **own** clockwise direction, and
//! * [`Observation::coll`] — in the *perceptive* model, the distance from its
//!   start position to its first collision in the round (if any).
//!
//! The crate provides:
//!
//! * exact fixed-point circle geometry ([`geometry`]),
//! * ring configurations and hidden ground truth ([`config`], [`state`]),
//! * an O(n)-per-round *analytic engine* based on the rotation-index lemma
//!   ([`analytic`]),
//! * a reference *event-driven engine* that simulates every collision
//!   ([`events`]),
//! * the per-agent observation model with local frames ([`observe`],
//!   [`frame`]).
//!
//! # Example
//!
//! ```
//! use ring_sim::prelude::*;
//!
//! # fn main() -> Result<(), RingError> {
//! // Five agents at random (but reproducible) positions, mixed chirality.
//! let config = RingConfig::builder(5)
//!     .random_positions(7)
//!     .random_chirality(11)
//!     .build()?;
//! let mut ring = RingState::new(&config);
//!
//! // Everybody moves towards its own right for one round.
//! let dirs = vec![LocalDirection::Right; 5];
//! let outcome = ring.execute_round(&dirs, EngineKind::Analytic)?;
//! assert_eq!(outcome.observations.len(), 5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analytic;
pub mod config;
pub mod direction;
pub mod error;
pub mod events;
pub mod frame;
pub mod geometry;
pub mod model;
pub mod observe;
pub mod rotation;
pub mod state;

pub use analytic::{AnalyticEngine, AnalyticScratch};
pub use config::{RingConfig, RingConfigBuilder};
pub use direction::{Chirality, LocalDirection, ObjectiveDirection};
pub use error::RingError;
pub use events::{CollisionEvent, EventEngine, EventScratch, Trajectory};
pub use frame::Frame;
pub use geometry::{ArcLength, Point, CIRCUMFERENCE};
pub use model::{Model, Parity};
pub use observe::Observation;
pub use rotation::{rotation_index, RotationIndex};
pub use state::{EngineKind, RingState, RoundBuffers, RoundOutcome};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::analytic::AnalyticEngine;
    pub use crate::config::{RingConfig, RingConfigBuilder};
    pub use crate::direction::{Chirality, LocalDirection, ObjectiveDirection};
    pub use crate::error::RingError;
    pub use crate::events::{EventEngine, EventScratch};
    pub use crate::frame::Frame;
    pub use crate::geometry::{ArcLength, Point, CIRCUMFERENCE};
    pub use crate::model::{Model, Parity};
    pub use crate::observe::Observation;
    pub use crate::rotation::{rotation_index, RotationIndex};
    pub use crate::state::{EngineKind, RingState, RoundBuffers, RoundOutcome};
}
