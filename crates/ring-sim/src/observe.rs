//! Per-agent observations delivered at the end of a round.

use crate::geometry::ArcLength;
use serde::{Deserialize, Serialize};

/// What a single agent learns about its own trajectory at the end of a
/// round, already expressed in the agent's **own** frame.
///
/// * `dist` is the distance between the agent's position at the beginning of
///   the round and its position at the end of the round, measured going in
///   the agent's own clockwise ("right") direction. It is `0` exactly when
///   the two positions coincide (rotation index 0).
/// * `coll` is only populated in the perceptive model: the distance between
///   the agent's position at the beginning of the round and the position of
///   its first collision in the round, measured along the agent's initial
///   direction of travel. `None` if the agent had no collision at all.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Observation {
    /// `dist()` of the paper.
    pub dist: ArcLength,
    /// `coll()` of the paper (perceptive model only).
    pub coll: Option<ArcLength>,
}

impl Observation {
    /// An observation for an agent that ended where it started and had no
    /// collision.
    pub fn stationary() -> Self {
        Observation::default()
    }

    /// Creates an observation with only the displacement populated
    /// (basic / lazy model).
    pub fn with_dist(dist: ArcLength) -> Self {
        Observation { dist, coll: None }
    }

    /// Creates a perceptive-model observation.
    pub fn with_dist_and_coll(dist: ArcLength, coll: Option<ArcLength>) -> Self {
        Observation { dist, coll }
    }

    /// Whether the agent ended the round where it started.
    pub fn returned_to_start(&self) -> bool {
        self.dist.is_zero()
    }

    /// Strips the collision information, as seen by a non-perceptive agent.
    pub fn without_coll(self) -> Self {
        Observation {
            dist: self.dist,
            coll: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ArcLength;

    #[test]
    fn constructors() {
        let s = Observation::stationary();
        assert!(s.returned_to_start());
        assert!(s.coll.is_none());

        let d = ArcLength::from_ticks(10);
        let o = Observation::with_dist(d);
        assert_eq!(o.dist, d);
        assert!(!o.returned_to_start());

        let o = Observation::with_dist_and_coll(d, Some(ArcLength::from_ticks(4)));
        assert_eq!(o.coll.unwrap().ticks(), 4);
        assert!(o.without_coll().coll.is_none());
    }
}
