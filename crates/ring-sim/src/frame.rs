//! Agent-side adjustable orientation.
//!
//! An agent cannot change its *physical* chirality — that is a property of
//! the hardware — but protocol code frequently wants to "change its sense of
//! direction" (Algorithm 1 of the paper) after learning something about the
//! world. A [`Frame`] is the agent-side bookkeeping for this: it maps the
//! *logical* directions used by protocol logic onto the agent's physical
//! local directions, and translates observations accordingly.
//!
//! After a successful direction-agreement protocol every agent holds a frame
//! whose logical clockwise direction is the same for all agents (even though
//! their physical chiralities still differ).

use crate::direction::LocalDirection;
use crate::observe::Observation;
use serde::{Deserialize, Serialize};

/// A logical orientation maintained by an agent on top of its physical
/// local frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Frame {
    flipped: bool,
}

impl Frame {
    /// The identity frame: logical directions coincide with the agent's
    /// physical local directions.
    pub fn identity() -> Self {
        Frame { flipped: false }
    }

    /// Creates a frame with the given flip state.
    pub fn new(flipped: bool) -> Self {
        Frame { flipped }
    }

    /// Whether the logical frame is currently flipped with respect to the
    /// agent's physical frame.
    pub fn is_flipped(self) -> bool {
        self.flipped
    }

    /// Flips the logical sense of direction ("change sense of direction" in
    /// the paper's pseudocode).
    pub fn flip(&mut self) {
        self.flipped = !self.flipped;
    }

    /// Translates a logical direction into the physical local direction the
    /// agent must request from the substrate.
    pub fn to_physical(self, logical: LocalDirection) -> LocalDirection {
        if self.flipped {
            logical.opposite()
        } else {
            logical
        }
    }

    /// Translates a physical local direction into the logical frame.
    pub fn to_logical(self, physical: LocalDirection) -> LocalDirection {
        // The map is an involution, so the two translations coincide.
        self.to_physical(physical)
    }

    /// Re-expresses an observation (delivered in the agent's physical frame)
    /// in the logical frame: a flip mirrors the circle, so a nonzero
    /// displacement `d` becomes `1 − d` while collision distances (path
    /// lengths) are unchanged.
    pub fn observation_to_logical(self, obs: Observation) -> Observation {
        if !self.flipped || obs.dist.is_zero() {
            return obs;
        }
        Observation {
            dist: obs.dist.complement(),
            coll: obs.coll,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{ArcLength, CIRCUMFERENCE};

    #[test]
    fn identity_frame_is_transparent() {
        let f = Frame::identity();
        assert_eq!(f.to_physical(LocalDirection::Right), LocalDirection::Right);
        let obs = Observation::with_dist(ArcLength::from_ticks(10));
        assert_eq!(f.observation_to_logical(obs), obs);
    }

    #[test]
    fn flipped_frame_mirrors_directions_and_distances() {
        let mut f = Frame::identity();
        f.flip();
        assert!(f.is_flipped());
        assert_eq!(f.to_physical(LocalDirection::Right), LocalDirection::Left);
        assert_eq!(f.to_physical(LocalDirection::Idle), LocalDirection::Idle);

        let obs = Observation::with_dist_and_coll(
            ArcLength::from_ticks(10),
            Some(ArcLength::from_ticks(3)),
        );
        let logical = f.observation_to_logical(obs);
        assert_eq!(logical.dist.ticks(), CIRCUMFERENCE - 10);
        assert_eq!(logical.coll.unwrap().ticks(), 3);

        // Zero displacement is a fixed point of the mirroring.
        let obs = Observation::stationary();
        assert_eq!(f.observation_to_logical(obs).dist, ArcLength::ZERO);
    }

    #[test]
    fn double_flip_is_identity() {
        let mut f = Frame::identity();
        f.flip();
        f.flip();
        assert_eq!(f, Frame::identity());
    }
}
