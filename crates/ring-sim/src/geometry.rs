//! Exact fixed-point geometry on the unit circle.
//!
//! Positions and distances are expressed in integer *ticks*. The whole
//! circumference is [`CIRCUMFERENCE`] ticks, so a tick corresponds to
//! `1 / 2^40` of the circle. Initial agent positions are restricted to even
//! tick values; because the order of agents never changes, every position an
//! agent can ever occupy is one of the initial positions, and every collision
//! point is the midpoint of two initial positions, hence an exact integer.
//!
//! Two newtypes keep points and arc lengths apart:
//!
//! * [`Point`] — a location on the circle, always `< CIRCUMFERENCE`;
//! * [`ArcLength`] — a (directed) distance along the circle, `<= CIRCUMFERENCE`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of ticks in the full circle (circumference 1).
pub const CIRCUMFERENCE: u64 = 1 << 40;

/// A location on the circle, measured in ticks clockwise from an arbitrary
/// (but fixed) origin. Always strictly less than [`CIRCUMFERENCE`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Point(u64);

/// A distance along the circle measured in ticks, in `0..=CIRCUMFERENCE`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ArcLength(u64);

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point({} = {:.6})", self.0, self.as_fraction())
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_fraction())
    }
}

impl fmt::Debug for ArcLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArcLength({} = {:.6})", self.0, self.as_fraction())
    }
}

impl fmt::Display for ArcLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_fraction())
    }
}

impl Point {
    /// The origin of the circle (tick 0).
    pub const ORIGIN: Point = Point(0);

    /// Creates a point from a raw tick value.
    ///
    /// Values are reduced modulo [`CIRCUMFERENCE`].
    pub fn from_ticks(ticks: u64) -> Self {
        Point(ticks % CIRCUMFERENCE)
    }

    /// Creates a point from a fraction of the circle in `[0, 1)`.
    ///
    /// The fraction is rounded down to the nearest even tick so that the
    /// exactness invariants of the simulator hold.
    pub fn from_fraction(fraction: f64) -> Self {
        let f = fraction.rem_euclid(1.0);
        let ticks = (f * CIRCUMFERENCE as f64) as u64;
        Point((ticks & !1) % CIRCUMFERENCE)
    }

    /// Raw tick value of this point.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Position as a fraction of the circle in `[0, 1)`.
    pub fn as_fraction(self) -> f64 {
        self.0 as f64 / CIRCUMFERENCE as f64
    }

    /// Clockwise distance from `self` to `other` (0 if equal).
    pub fn cw_distance_to(self, other: Point) -> ArcLength {
        ArcLength((other.0 + CIRCUMFERENCE - self.0) % CIRCUMFERENCE)
    }

    /// Anticlockwise distance from `self` to `other` (0 if equal).
    pub fn acw_distance_to(self, other: Point) -> ArcLength {
        ArcLength((self.0 + CIRCUMFERENCE - other.0) % CIRCUMFERENCE)
    }

    /// The point reached by moving `len` ticks clockwise from `self`.
    pub fn offset_cw(self, len: ArcLength) -> Point {
        Point((self.0 + len.0) % CIRCUMFERENCE)
    }

    /// The point reached by moving `len` ticks anticlockwise from `self`.
    pub fn offset_acw(self, len: ArcLength) -> Point {
        Point((self.0 + CIRCUMFERENCE - (len.0 % CIRCUMFERENCE)) % CIRCUMFERENCE)
    }

    /// The midpoint of the clockwise arc from `self` to `other`.
    ///
    /// This is where two approaching agents starting at `self` (moving
    /// clockwise) and `other` (moving anticlockwise) collide.
    pub fn cw_midpoint(self, other: Point) -> Point {
        let half = ArcLength(self.cw_distance_to(other).0 / 2);
        self.offset_cw(half)
    }
}

impl ArcLength {
    /// The zero arc length.
    pub const ZERO: ArcLength = ArcLength(0);
    /// The full circle as an arc length.
    pub const FULL: ArcLength = ArcLength(CIRCUMFERENCE);

    /// Creates an arc length from a raw tick value.
    ///
    /// # Panics
    ///
    /// Panics if `ticks > CIRCUMFERENCE`.
    pub fn from_ticks(ticks: u64) -> Self {
        assert!(
            ticks <= CIRCUMFERENCE,
            "arc length {ticks} exceeds the circumference"
        );
        ArcLength(ticks)
    }

    /// Creates an arc length from a fraction of the circle in `[0, 1]`.
    pub fn from_fraction(fraction: f64) -> Self {
        let f = fraction.clamp(0.0, 1.0);
        ArcLength((f * CIRCUMFERENCE as f64).round() as u64)
    }

    /// Raw tick value.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Arc length as a fraction of the circle.
    pub fn as_fraction(self) -> f64 {
        self.0 as f64 / CIRCUMFERENCE as f64
    }

    /// Whether this arc length is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating sum of two arc lengths (capped at one full circle).
    pub fn saturating_add(self, other: ArcLength) -> ArcLength {
        ArcLength((self.0 + other.0).min(CIRCUMFERENCE))
    }

    /// Exact sum of two arc lengths; may exceed the circumference, so the
    /// result is returned in raw ticks.
    pub fn sum_ticks(self, other: ArcLength) -> u64 {
        self.0 + other.0
    }

    /// The complementary arc (full circle minus `self`).
    pub fn complement(self) -> ArcLength {
        ArcLength(CIRCUMFERENCE - self.0)
    }

    /// Half of this arc length (exact if the tick count is even, floor
    /// division otherwise).
    pub fn half(self) -> ArcLength {
        ArcLength(self.0 / 2)
    }

    /// Twice this arc length in raw ticks (may exceed the circumference).
    pub fn doubled_ticks(self) -> u64 {
        self.0 * 2
    }
}

impl std::ops::Add for ArcLength {
    type Output = ArcLength;

    /// Adds two arc lengths.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the result exceeds the circumference;
    /// use [`ArcLength::sum_ticks`] when wrap-around totals are expected.
    fn add(self, rhs: ArcLength) -> ArcLength {
        debug_assert!(self.0 + rhs.0 <= CIRCUMFERENCE, "arc overflow");
        ArcLength(self.0 + rhs.0)
    }
}

impl std::ops::Sub for ArcLength {
    type Output = ArcLength;

    /// Subtracts `rhs` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs > self`.
    fn sub(self, rhs: ArcLength) -> ArcLength {
        assert!(rhs.0 <= self.0, "arc underflow");
        ArcLength(self.0 - rhs.0)
    }
}

impl std::iter::Sum for ArcLength {
    fn sum<I: Iterator<Item = ArcLength>>(iter: I) -> ArcLength {
        ArcLength(iter.map(|a| a.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cw_and_acw_distances_are_complementary() {
        let a = Point::from_ticks(100);
        let b = Point::from_ticks(500);
        let cw = a.cw_distance_to(b);
        let acw = a.acw_distance_to(b);
        assert_eq!(cw.ticks() + acw.ticks(), CIRCUMFERENCE);
        assert_eq!(cw.ticks(), 400);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::from_ticks(12345);
        assert!(a.cw_distance_to(a).is_zero());
        assert!(a.acw_distance_to(a).is_zero());
    }

    #[test]
    fn offsets_round_trip() {
        let a = Point::from_ticks(CIRCUMFERENCE - 10);
        let d = ArcLength::from_ticks(30);
        let b = a.offset_cw(d);
        assert_eq!(b.ticks(), 20);
        assert_eq!(b.offset_acw(d), a);
        assert_eq!(a.cw_distance_to(b), d);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::from_ticks(10);
        let b = Point::from_ticks(110);
        let m = a.cw_midpoint(b);
        assert_eq!(m.ticks(), 60);
        // Wrapping case.
        let a = Point::from_ticks(CIRCUMFERENCE - 50);
        let b = Point::from_ticks(50);
        let m = a.cw_midpoint(b);
        assert_eq!(m.ticks(), 0);
    }

    #[test]
    fn fraction_conversions() {
        let p = Point::from_fraction(0.25);
        assert!((p.as_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(p.ticks() % 2, 0);
        let l = ArcLength::from_fraction(0.5);
        assert!((l.as_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn arc_arithmetic() {
        let a = ArcLength::from_ticks(10);
        let b = ArcLength::from_ticks(30);
        assert_eq!((a + b).ticks(), 40);
        assert_eq!((b - a).ticks(), 20);
        assert_eq!(a.complement().ticks(), CIRCUMFERENCE - 10);
        assert_eq!(b.half().ticks(), 15);
        assert_eq!(b.doubled_ticks(), 60);
        let s: ArcLength = [a, b].into_iter().sum();
        assert_eq!(s.ticks(), 40);
    }

    #[test]
    #[should_panic(expected = "arc underflow")]
    fn arc_subtraction_underflow_panics() {
        let _ = ArcLength::from_ticks(1) - ArcLength::from_ticks(2);
    }

    #[test]
    #[should_panic(expected = "exceeds the circumference")]
    fn arc_length_above_circumference_panics() {
        let _ = ArcLength::from_ticks(CIRCUMFERENCE + 1);
    }
}
