//! Model variants and number-theoretic helpers shared across the crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three model variants of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Model {
    /// Agents must start each round moving right or left; only `dist()` is
    /// observed.
    Basic,
    /// Like [`Model::Basic`] but agents may also start a round idle.
    Lazy,
    /// Like [`Model::Basic`] but agents additionally observe `coll()`, the
    /// distance to their first collision in the round.
    Perceptive,
}

impl Model {
    /// Whether agents may choose to stay idle at the start of a round.
    pub fn allows_idle(self) -> bool {
        matches!(self, Model::Lazy)
    }

    /// Whether agents observe the distance to their first collision.
    pub fn observes_collisions(self) -> bool {
        matches!(self, Model::Perceptive)
    }

    /// All model variants, useful for exhaustive tests and sweeps.
    pub const ALL: [Model; 3] = [Model::Basic, Model::Lazy, Model::Perceptive];
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Model::Basic => "basic",
            Model::Lazy => "lazy",
            Model::Perceptive => "perceptive",
        };
        f.write_str(s)
    }
}

/// Parity of the (unknown) network size `n`; the only information about `n`
/// that agents are assumed to possess.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Parity {
    /// `n` is odd.
    Odd,
    /// `n` is even.
    Even,
}

impl Parity {
    /// The parity of `n`.
    pub fn of(n: usize) -> Parity {
        if n.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// Whether this parity is even.
    pub fn is_even(self) -> bool {
        matches!(self, Parity::Even)
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Parity::Odd => "odd",
            Parity::Even => "even",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_capabilities() {
        assert!(!Model::Basic.allows_idle());
        assert!(Model::Lazy.allows_idle());
        assert!(!Model::Perceptive.allows_idle());
        assert!(Model::Perceptive.observes_collisions());
        assert!(!Model::Basic.observes_collisions());
        assert!(!Model::Lazy.observes_collisions());
        assert_eq!(Model::ALL.len(), 3);
    }

    #[test]
    fn parity_of_n() {
        assert_eq!(Parity::of(5), Parity::Odd);
        assert_eq!(Parity::of(6), Parity::Even);
        assert!(Parity::of(0).is_even());
    }
}
