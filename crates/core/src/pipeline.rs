//! End-to-end pipelines and round accounting.
//!
//! The experiment harness regenerates Tables I and II of the paper by
//! measuring, for many configurations, how many rounds each coordination
//! problem takes in each setting. [`measure_problem`] solves one problem on
//! a fresh executor and reports the cost; [`run_pipeline`] does so for all
//! four problems of Table I.
//!
//! The nontrivial-move routes, the probe layer, the basic/lazy location
//! sweeps and the whole perceptive stack (collision link, flooding,
//! `NMoveS`, `RingDist`, `Distances`) execute through the batched round
//! interface ([`crate::exec::StepBuffers`] /
//! [`crate::exec::Network::run_schedule`]): one scratch arena per protocol
//! run, no per-round heap allocation. Only the low-frequency
//! leader-election and direction-agreement drivers still go through the
//! allocating [`crate::exec::Network::step`] (a handful of rounds per run).

use crate::coordination::diragr::agree_direction;
use crate::coordination::leader::elect_leader;
use crate::coordination::nontrivial::solve_nontrivial_move;
use crate::error::ProtocolError;
use crate::exec::Network;
use crate::fault::{FaultParams, FaultPlan};
use crate::ids::IdAssignment;
use crate::locate::{discover_locations, verify_location_discovery};
use crate::structures::{fresh_structures, SharedStructures};
use ring_sim::{Model, Parity, RingConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four problems of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Problem {
    /// Exactly one agent ends with the leader status.
    LeaderElection,
    /// Find a direction assignment whose rotation index is outside `{0, n/2}`.
    NontrivialMove,
    /// All agents agree on which direction is clockwise.
    DirectionAgreement,
    /// Every agent learns the initial position of every other agent.
    LocationDiscovery,
}

impl Problem {
    /// All problems, in the column order of Table I.
    pub const ALL: [Problem; 4] = [
        Problem::LeaderElection,
        Problem::NontrivialMove,
        Problem::DirectionAgreement,
        Problem::LocationDiscovery,
    ];
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Problem::LeaderElection => "leader election",
            Problem::NontrivialMove => "nontrivial move",
            Problem::DirectionAgreement => "direction agreement",
            Problem::LocationDiscovery => "location discovery",
        };
        f.write_str(s)
    }
}

/// The measured cost of solving one problem on one configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemCost {
    /// Which problem was solved.
    pub problem: Problem,
    /// Whether the problem is solvable at all in this setting.
    pub solvable: bool,
    /// Rounds used (`None` when unsolvable).
    pub rounds: Option<u64>,
    /// Whether the result was verified against the hidden ground truth
    /// (always attempted when applicable).
    pub verified: bool,
}

/// Round counts for all four problems of Table I on one configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PipelineReport {
    /// The model the measurements were taken in.
    pub model: Model,
    /// Parity of the ring size.
    pub parity: Parity,
    /// Ring size.
    pub n: usize,
    /// Identifier universe size.
    pub universe: u64,
    /// Per-problem costs, in the order of [`Problem::ALL`].
    pub costs: Vec<ProblemCost>,
}

impl PipelineReport {
    /// The cost entry for a given problem.
    pub fn cost(&self, problem: Problem) -> Option<&ProblemCost> {
        self.costs.iter().find(|c| c.problem == problem)
    }
}

/// Solves `problem` from scratch on a fresh executor over `config`/`ids` in
/// `model`, verifying the result against the ground truth.
///
/// # Errors
///
/// Propagates protocol errors other than the expected
/// [`ProtocolError::Unsolvable`] for location discovery in the basic model
/// with even `n` (which is reported as `solvable: false`).
pub fn measure_problem(
    config: &RingConfig,
    ids: &IdAssignment,
    model: Model,
    problem: Problem,
) -> Result<ProblemCost, ProtocolError> {
    measure_problem_with(config, ids, model, problem, &fresh_structures())
}

/// [`measure_problem`] with an explicit combinatorial-structure provider:
/// the executor obtains its distinguishers through `structures`, so a sweep
/// harness can hand every case the same shared cache.
///
/// # Errors
///
/// Same as [`measure_problem`].
pub fn measure_problem_with(
    config: &RingConfig,
    ids: &IdAssignment,
    model: Model,
    problem: Problem,
    structures: &SharedStructures,
) -> Result<ProblemCost, ProtocolError> {
    measure_problem_seeded(
        config,
        ids,
        model,
        problem,
        structures,
        crate::coordination::nontrivial::STRUCTURE_SEED,
    )
}

/// [`measure_problem_with`] with an explicit structure seed: the executor's
/// distinguisher machinery draws its structures under `structure_seed`
/// instead of the fixed default, which is how seed-diverse sweeps measure
/// the spread over structure randomness.
///
/// # Errors
///
/// Same as [`measure_problem`].
pub fn measure_problem_seeded(
    config: &RingConfig,
    ids: &IdAssignment,
    model: Model,
    problem: Problem,
    structures: &SharedStructures,
    structure_seed: u64,
) -> Result<ProblemCost, ProtocolError> {
    let mut net = Network::new(config, ids.clone(), model)?
        .with_structures(structures.clone())
        .with_structure_seed(structure_seed);
    match problem {
        Problem::LeaderElection => {
            let election = elect_leader(&mut net)?;
            let verified = election.leaders().count() == 1;
            Ok(ProblemCost {
                problem,
                solvable: true,
                rounds: Some(election.rounds()),
                verified,
            })
        }
        Problem::NontrivialMove => {
            let nm = solve_nontrivial_move(&mut net)?;
            let verified = crate::coordination::nontrivial::verify_nontrivial(&mut net, &nm);
            Ok(ProblemCost {
                problem,
                solvable: true,
                rounds: Some(nm.rounds()),
                verified,
            })
        }
        Problem::DirectionAgreement => {
            let agreement = agree_direction(&mut net)?;
            let verified =
                crate::coordination::diragr::frames_are_coherent(&net, agreement.frames());
            Ok(ProblemCost {
                problem,
                solvable: true,
                rounds: Some(agreement.rounds()),
                verified,
            })
        }
        Problem::LocationDiscovery => match discover_locations(&mut net) {
            Ok(discovery) => {
                let verified = verify_location_discovery(&net, &discovery);
                Ok(ProblemCost {
                    problem,
                    solvable: true,
                    rounds: Some(discovery.rounds()),
                    verified,
                })
            }
            Err(ProtocolError::Unsolvable { .. }) => Ok(ProblemCost {
                problem,
                solvable: false,
                rounds: None,
                verified: true,
            }),
            Err(e) => Err(e),
        },
    }
}

/// How one faulty protocol run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultyOutcome {
    /// The protocol terminated and its result verified against ground
    /// truth.
    Completed,
    /// The protocol terminated but produced a wrong result, or aborted
    /// with a protocol error (exhausted budget, violated invariant).
    Failed,
    /// The executor's round limit fired before the protocol terminated.
    TimedOut,
}

/// The measured cost of one protocol run under fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultyCost {
    /// Which problem was attempted.
    pub problem: Problem,
    /// How the run ended.
    pub outcome: FaultyOutcome,
    /// Rounds used (`None` unless the run completed and verified).
    pub rounds: Option<u64>,
}

/// Solves `problem` on a fresh executor under the deterministic fault plan
/// derived from `(params, n, fault_seed)`, with the event-driven reference
/// engine and a hard round cap of `round_limit`.
///
/// Unlike [`measure_problem_seeded`] this never propagates protocol
/// errors: under faults, failure is a measurement result. A run that hits
/// the round cap reports [`FaultyOutcome::TimedOut`]; any other protocol
/// error — or a result that fails ground-truth verification — reports
/// [`FaultyOutcome::Failed`].
#[allow(clippy::too_many_arguments)]
pub fn measure_problem_faulty(
    config: &RingConfig,
    ids: &IdAssignment,
    model: Model,
    problem: Problem,
    structures: &SharedStructures,
    structure_seed: u64,
    params: FaultParams,
    fault_seed: u64,
    round_limit: u64,
) -> FaultyCost {
    let net = match Network::new(config, ids.clone(), model) {
        Ok(net) => net
            .with_structures(structures.clone())
            .with_structure_seed(structure_seed)
            .with_faults(FaultPlan::new(params, config.len(), fault_seed))
            .with_round_limit(round_limit),
        Err(_) => {
            return FaultyCost {
                problem,
                outcome: FaultyOutcome::Failed,
                rounds: None,
            }
        }
    };
    let mut net = net;
    let result: Result<(u64, bool), ProtocolError> = match problem {
        Problem::LeaderElection => elect_leader(&mut net)
            .map(|election| (election.rounds(), election.leaders().count() == 1)),
        Problem::NontrivialMove => solve_nontrivial_move(&mut net).map(|nm| {
            let verified = crate::coordination::nontrivial::verify_nontrivial(&mut net, &nm);
            (nm.rounds(), verified)
        }),
        Problem::DirectionAgreement => agree_direction(&mut net).map(|agreement| {
            let verified =
                crate::coordination::diragr::frames_are_coherent(&net, agreement.frames());
            (agreement.rounds(), verified)
        }),
        Problem::LocationDiscovery => discover_locations(&mut net).map(|discovery| {
            (
                discovery.rounds(),
                verify_location_discovery(&net, &discovery),
            )
        }),
    };
    match result {
        Ok((rounds, true)) => FaultyCost {
            problem,
            outcome: FaultyOutcome::Completed,
            rounds: Some(rounds),
        },
        Ok((_, false)) => FaultyCost {
            problem,
            outcome: FaultyOutcome::Failed,
            rounds: None,
        },
        Err(ProtocolError::RoundLimitReached { .. }) => FaultyCost {
            problem,
            outcome: FaultyOutcome::TimedOut,
            rounds: None,
        },
        Err(_) => FaultyCost {
            problem,
            outcome: FaultyOutcome::Failed,
            rounds: None,
        },
    }
}

/// Measures all four problems of Table I on one configuration.
///
/// # Errors
///
/// Propagates errors from [`measure_problem`].
pub fn run_pipeline(
    config: &RingConfig,
    ids: &IdAssignment,
    model: Model,
) -> Result<PipelineReport, ProtocolError> {
    run_pipeline_with(config, ids, model, &fresh_structures())
}

/// [`run_pipeline`] with an explicit combinatorial-structure provider.
///
/// # Errors
///
/// Propagates errors from [`measure_problem_with`].
pub fn run_pipeline_with(
    config: &RingConfig,
    ids: &IdAssignment,
    model: Model,
    structures: &SharedStructures,
) -> Result<PipelineReport, ProtocolError> {
    let costs = Problem::ALL
        .iter()
        .map(|&p| measure_problem_with(config, ids, model, p, structures))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(PipelineReport {
        model,
        parity: Parity::of(config.len()),
        n: config.len(),
        universe: ids.universe(),
        costs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_covers_all_problems_for_an_odd_basic_ring() {
        let config = RingConfig::builder(9)
            .random_positions(7)
            .random_chirality(8)
            .build()
            .unwrap();
        let ids = IdAssignment::random(9, 256, 9);
        let report = run_pipeline(&config, &ids, Model::Basic).unwrap();
        assert_eq!(report.costs.len(), 4);
        assert!(report.costs.iter().all(|c| c.verified));
        assert!(
            report
                .cost(Problem::LocationDiscovery)
                .unwrap()
                .rounds
                .unwrap()
                >= 9
        );
    }

    #[test]
    fn pipeline_marks_basic_even_location_discovery_unsolvable() {
        let config = RingConfig::builder(8)
            .random_positions(5)
            .random_chirality(6)
            .build()
            .unwrap();
        let ids = IdAssignment::random(8, 128, 7);
        let report = run_pipeline(&config, &ids, Model::Basic).unwrap();
        let ld = report.cost(Problem::LocationDiscovery).unwrap();
        assert!(!ld.solvable);
        assert!(ld.rounds.is_none());
        // The coordination problems are still solvable.
        assert!(report.cost(Problem::LeaderElection).unwrap().solvable);
    }

    #[test]
    fn faulty_measurement_with_no_faults_matches_the_clean_pipeline() {
        let config = RingConfig::builder(9)
            .random_positions(7)
            .random_chirality(8)
            .build()
            .unwrap();
        let ids = IdAssignment::random(9, 256, 9);
        let structures = fresh_structures();
        for problem in [
            Problem::LeaderElection,
            Problem::NontrivialMove,
            Problem::DirectionAgreement,
        ] {
            let clean =
                measure_problem_with(&config, &ids, Model::Basic, problem, &structures).unwrap();
            let faulty = measure_problem_faulty(
                &config,
                &ids,
                Model::Basic,
                problem,
                &structures,
                crate::coordination::nontrivial::STRUCTURE_SEED,
                FaultParams::default(),
                123,
                20_000,
            );
            assert_eq!(faulty.outcome, FaultyOutcome::Completed, "{problem}");
            // The event-driven reference executor agrees with the analytic
            // path on fault-free plans: identical round counts.
            assert_eq!(faulty.rounds, clean.rounds, "{problem}");
        }
    }

    #[test]
    fn full_drop_never_completes_and_never_panics() {
        let config = RingConfig::builder(8)
            .random_positions(5)
            .random_chirality(6)
            .build()
            .unwrap();
        let ids = IdAssignment::random(8, 128, 7);
        let cost = measure_problem_faulty(
            &config,
            &ids,
            Model::Basic,
            Problem::LeaderElection,
            &fresh_structures(),
            crate::coordination::nontrivial::STRUCTURE_SEED,
            FaultParams {
                drop_per_mille: 1000,
                ..FaultParams::default()
            },
            7,
            2_000,
        );
        assert_ne!(cost.outcome, FaultyOutcome::Completed);
        assert_eq!(cost.rounds, None);
    }

    #[test]
    fn pipeline_runs_in_the_lazy_and_perceptive_models() {
        let config = RingConfig::builder(8)
            .random_positions(15)
            .alternating_chirality()
            .build()
            .unwrap();
        let ids = IdAssignment::random(8, 128, 17);
        for model in [Model::Lazy, Model::Perceptive] {
            let report = run_pipeline(&config, &ids, model).unwrap();
            assert!(
                report.costs.iter().all(|c| c.solvable && c.verified),
                "{model}"
            );
        }
    }
}
