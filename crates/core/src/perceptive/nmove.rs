//! `NMoveS`: the perceptive-model nontrivial-move algorithm (Algorithm 4,
//! Lemma 36).
//!
//! The idea: if the all-right round is trivial, then any round in which
//! **exactly one** agent deviates from it has a rotation index differing by
//! exactly 2 and is therefore nontrivial (the same observation as Lemma 10).
//! The problem reduces to isolating a single deviator without knowing who
//! is present — which is what selective families are for. To keep the
//! families small the algorithm first thins the agents to *local leaders* at
//! exponentially growing radii: a level-`k` leader is a level-`(k−1)` leader
//! whose identifier beats every other level-`(k−1)` leader within ring
//! distance `2^k`, so level-`k` leaders are more than `2^k` apart and at
//! most `n/2^k` of them remain. Once the selective family's target size
//! catches up with the number of surviving leaders (`2^k ≈ √n`), some set
//! selects exactly one leader and the induced round is nontrivial. Total
//! cost `O(√n · log N)` rounds.
//!
//! The selective family is realised *implicitly*: membership of an
//! identifier in a set is a pseudo-random function of the public seed, the
//! level, the set index and the identifier, so no `Θ(N)` structure is ever
//! materialised (the explicit, verifiable construction lives in
//! [`ring_combinat::SelectiveFamily`] and is exercised by the experiment
//! harness).

use crate::coordination::nontrivial::{NontrivialMove, NontrivialStrategy};
use crate::coordination::probe::{probe_move_with, MoveClass};
use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use crate::perceptive::dissemination::{flood_max_with, FloodBuffers};
use crate::perceptive::link::RingLink;
use ring_sim::LocalDirection;

/// Pseudo-random membership test of `id` in set `set_index` at `scale`
/// (inclusion probability `2^{-scale}`), derived from a public seed so that
/// every agent evaluates it identically.
fn implicit_member(seed: u64, level: u32, scale: u32, set_index: u64, id: u64) -> bool {
    // SplitMix64-style mixing.
    let mut x = seed
        ^ (u64::from(level)).wrapping_mul(0x9e3779b97f4a7c15)
        ^ (u64::from(scale)).wrapping_mul(0xc2b2ae3d27d4eb4f)
        ^ set_index.wrapping_mul(0xd6e8feb86659fd93)
        ^ id.wrapping_mul(0xa0761d6478bd642f);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    if scale >= 64 {
        return false;
    }
    x & ((1u64 << scale) - 1) == 0
}

/// Number of sets executed per scale at a given level.
fn sets_per_scale(universe: u64, scale: u32) -> u64 {
    let width = (universe as f64 / f64::from(1u32 << scale.min(31))).max(2.0);
    (4.0 * f64::from(1u32 << scale.min(31)) * width.log2().max(1.0)).ceil() as u64
}

/// Algorithm 4: solves the nontrivial-move problem in the perceptive model
/// in `O(√n · log N)` rounds.
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::RoundBudgetExceeded`]
/// if no nontrivial move is found after the maximum level (which would
/// require the pseudo-random selective families to fail at every level and
/// has negligible probability).
pub fn nmove_s(net: &mut Network<'_>, seed: u64) -> Result<NontrivialMove, ProtocolError> {
    let n = net.len();
    let start = net.rounds_used();
    let mut bufs = StepBuffers::new();

    // Step 1: maybe the all-right round is already nontrivial.
    let all_right = vec![LocalDirection::Right; n];
    if probe_move_with(net, &all_right, &mut bufs)? == MoveClass::Nontrivial {
        return Ok(NontrivialMove::new(
            all_right,
            net.rounds_used() - start,
            NontrivialStrategy::AllRight,
        ));
    }

    // Step 2: establish the collision link (Algorithm 3).
    let (link, _) = RingLink::establish(net)?;
    let id_bits = net.id_bits();

    // Step 3: local leaders at exponentially growing radii. The flooding,
    // probing and direction scratch is reused across all levels and sets.
    let mut flood = FloodBuffers::new();
    let mut values: Vec<Option<u64>> = Vec::with_capacity(n);
    let mut best: Vec<Option<u64>> = Vec::with_capacity(n);
    let mut dirs: Vec<LocalDirection> = Vec::with_capacity(n);
    let mut candidate: Vec<bool> = vec![true; n];
    let max_level = id_bits + 1;
    for level in 0..=max_level {
        let radius = 1usize << level.min(20);

        // Thin the candidates: a candidate survives iff its identifier is
        // the maximum among candidates within ring distance `radius`.
        values.clear();
        values.extend((0..n).map(|agent| candidate[agent].then(|| net.id_of(agent).value())));
        flood_max_with(net, &link, &values, id_bits, radius, &mut flood, &mut best)?;
        for agent in 0..n {
            candidate[agent] = candidate[agent] && best[agent] == Some(net.id_of(agent).value());
        }

        // Execute an implicit (N, 2^level)-selective family on the
        // surviving candidates: a selected candidate deviates (moves left)
        // from the all-right pattern.
        for scale in 0..=level {
            let sets = sets_per_scale(net.universe(), scale);
            for set_index in 0..sets {
                dirs.clear();
                dirs.extend((0..n).map(|agent| {
                    let id = net.id_of(agent).value();
                    if candidate[agent] && implicit_member(seed, level, scale, set_index, id) {
                        LocalDirection::Left
                    } else {
                        LocalDirection::Right
                    }
                }));
                if probe_move_with(net, &dirs, &mut bufs)? == MoveClass::Nontrivial {
                    return Ok(NontrivialMove::new(
                        dirs,
                        net.rounds_used() - start,
                        NontrivialStrategy::SelectiveFamily { radius },
                    ));
                }
            }
        }
    }

    Err(ProtocolError::RoundBudgetExceeded {
        protocol: "nmove-s",
        budget: net.rounds_used() - start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::nontrivial::verify_nontrivial;
    use crate::ids::IdAssignment;
    use ring_sim::{Model, RingConfig};

    #[test]
    fn nmove_s_succeeds_on_balanced_chirality() {
        // Alternating chirality on an even ring: the all-right round is
        // trivial and the selective machinery must isolate a deviator.
        let n = 12;
        let config = RingConfig::builder(n)
            .random_positions(3)
            .alternating_chirality()
            .build()
            .unwrap();
        let mut net = Network::new(
            &config,
            IdAssignment::random(n, 1 << 10, 4),
            Model::Perceptive,
        )
        .unwrap();
        let nm = nmove_s(&mut net, 99).unwrap();
        assert!(verify_nontrivial(&mut net, &nm));
    }

    #[test]
    fn nmove_s_shortcuts_when_all_right_already_works() {
        let n = 10;
        let config = RingConfig::builder(n)
            .random_positions(5)
            .explicit_chirality(
                (0..n)
                    .map(|i| {
                        if i < 3 {
                            ring_sim::Chirality::Reversed
                        } else {
                            ring_sim::Chirality::Aligned
                        }
                    })
                    .collect::<Vec<_>>(),
            )
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(n, 256, 6), Model::Perceptive).unwrap();
        let nm = nmove_s(&mut net, 7).unwrap();
        assert_eq!(nm.strategy(), NontrivialStrategy::AllRight);
        assert!(nm.rounds() <= 2);
        assert!(verify_nontrivial(&mut net, &nm));
    }

    #[test]
    fn nmove_s_handles_uniform_chirality_even_rings() {
        let n = 8;
        let config = RingConfig::builder(n)
            .random_positions(8)
            .aligned_chirality()
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(n, 128, 9), Model::Perceptive).unwrap();
        let nm = nmove_s(&mut net, 11).unwrap();
        assert!(verify_nontrivial(&mut net, &nm));
        assert!(matches!(
            nm.strategy(),
            NontrivialStrategy::SelectiveFamily { .. }
        ));
    }

    #[test]
    fn implicit_membership_is_deterministic_and_scale_sensitive() {
        let a = implicit_member(1, 2, 3, 4, 5);
        let b = implicit_member(1, 2, 3, 4, 5);
        assert_eq!(a, b);
        // Scale 0 includes everything.
        for id in 1..100 {
            assert!(implicit_member(9, 0, 0, 0, id));
        }
        // Large scales include almost nothing.
        let dense: usize = (1..=1000u64)
            .filter(|&id| implicit_member(9, 0, 10, 0, id))
            .count();
        assert!(dense < 30, "expected ~1/1024 density, got {dense}/1000");
    }
}
