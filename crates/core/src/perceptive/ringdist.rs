//! `RingDist`: every agent learns its ring distance from the leader
//! (Algorithm 5, Propositions 37/38, Lemma 39).
//!
//! Agents are labelled `1..=n` in logical-clockwise order starting from the
//! leader (`a_1`). Labels are discovered in waves: in the iteration with
//! radius `k = 2^i`,
//!
//! 1. every agent executes `Shift(−k/2)` `k` times, recording after the
//!    `j`-th execution the total gap length `y_j` it traversed (the ring
//!    rotates by exactly `k` positions per execution, so `y_j` is the sum of
//!    a known block of `k` consecutive gaps);
//! 2. the shifts are undone, and one `Shift(k)` is executed: an unlabelled
//!    agent's first collision distance `z` is half the arc separating it
//!    from agent `a_k` (Proposition 4), because `a_1,…,a_k` are exactly the
//!    agents moving logically clockwise;
//! 3. an unlabelled agent whose measurements satisfy `2z = y_1 + … + y_j`
//!    learns that its label is `k + jk` (Corollary 38) — the arithmetic is
//!    exact, so there are no false positives;
//! 4. the labelled agents flood their labels over ring distance `k`, and
//!    every unlabelled agent within reach infers its own label from the
//!    received value and the hop count;
//! 5. a `CheckCompleteness` round — only the left neighbour of the leader
//!    moves clockwise, and only if it already knows its label — tells every
//!    agent whether the process is finished.
//!
//! The total cost is `O(√n · log N)` rounds.

use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use crate::perceptive::dissemination::{flood_nearest_with, FloodBuffers, NearestSources};
use crate::perceptive::link::RingLink;
use ring_sim::{Frame, LocalDirection, CIRCUMFERENCE};

/// The labels assigned by `RingDist`.
#[derive(Clone, Debug)]
pub struct RingDistances {
    labels: Vec<usize>,
    rounds: u64,
}

impl RingDistances {
    /// The label (1-based ring distance from the leader plus one, in
    /// logical-clockwise order) of each agent.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Label of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn label(&self, agent: usize) -> usize {
        self.labels[agent]
    }

    /// Rounds consumed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// Runs Algorithm 5. Requires an elected leader, a coherent set of logical
/// frames and an established collision link.
///
/// To obtain labels counted in the opposite direction (used to let every
/// agent learn `n`), call this again with every frame flipped.
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::RoundBudgetExceeded`]
/// if the completeness check never succeeds (indicating a configuration
/// outside the protocol's assumptions) and [`ProtocolError::Internal`] if it
/// succeeds while some agent is still unlabelled.
pub fn ring_distances(
    net: &mut Network<'_>,
    link: &RingLink,
    frames: &[Frame],
    is_leader: &[bool],
) -> Result<RingDistances, ProtocolError> {
    let n = net.len();
    if frames.len() != n || is_leader.len() != n {
        return Err(ProtocolError::LengthMismatch {
            what: "frames / leader flags",
            got: frames.len().min(is_leader.len()),
            expected: n,
        });
    }
    let start = net.rounds_used();
    let label_bits = net.id_bits() + 1;

    let mut label: Vec<Option<usize>> = (0..n)
        .map(|agent| if is_leader[agent] { Some(1) } else { None })
        .collect();
    let mut is_last = vec![false; n];

    // Scratch reused by every phase of every iteration: after the vectors
    // reach the ring size, no round of the protocol allocates.
    let mut bufs = StepBuffers::new();
    let mut dirs: Vec<LocalDirection> = Vec::with_capacity(n);
    let mut flood = FloodBuffers::new();
    let mut nearest: Vec<NearestSources> = Vec::with_capacity(n);
    let mut sources: Vec<Option<u64>> = Vec::with_capacity(n);
    let mut z: Vec<Option<u64>> = Vec::with_capacity(n);
    let mut y_sums: Vec<Vec<u64>> = vec![Vec::new(); n];

    // Initial dissemination: the leader announces itself over distance 4.
    sources.clear();
    sources.extend(is_leader.iter().map(|&l| l.then_some(1u64)));
    flood_nearest_with(net, link, frames, &sources, 2, 4, &mut flood, &mut nearest)?;
    for agent in 0..n {
        if label[agent].is_none() {
            if let Some((hops, _)) = nearest[agent].from_left {
                label[agent] = Some(1 + hops);
            }
        }
        if let Some((1, _)) = nearest[agent].from_right {
            is_last[agent] = true;
        }
    }

    // Direction rule of Shift(l): agents with a known label ≤ threshold move
    // logically clockwise (for positive shifts) and everybody else moves the
    // other way. Directions are written into the reusable buffer.
    let fill_shift_dirs = |label: &[Option<usize>],
                           threshold: usize,
                           positive: bool,
                           dirs: &mut Vec<LocalDirection>| {
        dirs.clear();
        dirs.extend((0..n).map(|agent| {
            let in_prefix = label[agent].is_some_and(|l| l <= threshold);
            let logical = match (in_prefix, positive) {
                (true, true) | (false, false) => LocalDirection::Right,
                (true, false) | (false, true) => LocalDirection::Left,
            };
            frames[agent].to_physical(logical)
        }));
    };

    let max_iter = net.id_bits() + 2;
    let mut completed = false;
    for i in 1..=max_iter {
        let k = 1usize << i;

        // Phase A: k executions of Shift(−k/2); record the traversed gap
        // blocks y_1, …, y_k.
        for sums in &mut y_sums {
            sums.clear();
        }
        fill_shift_dirs(&label, k / 2, false, &mut dirs);
        for _ in 0..k {
            net.step_into(&dirs, &mut bufs)?;
            for (agent, obs) in bufs.observations().iter().enumerate() {
                let logical = frames[agent].observation_to_logical(*obs);
                let traversed = if logical.dist.is_zero() {
                    0
                } else {
                    CIRCUMFERENCE - logical.dist.ticks()
                };
                let prev = y_sums[agent].last().copied().unwrap_or(0);
                y_sums[agent].push(prev + traversed);
            }
        }
        // Phase B: undo the shifts.
        fill_shift_dirs(&label, k / 2, true, &mut dirs);
        for _ in 0..k {
            net.step_into(&dirs, &mut bufs)?;
        }

        // Phase C: Shift(k), collect z, undo.
        fill_shift_dirs(&label, k, true, &mut dirs);
        net.step_into(&dirs, &mut bufs)?;
        z.clear();
        z.extend(
            bufs.observations()
                .iter()
                .map(|o| o.coll.map(|c| c.ticks())),
        );
        fill_shift_dirs(&label, k, false, &mut dirs);
        net.step_into(&dirs, &mut bufs)?;

        // Label detection (Corollary 38).
        for agent in 0..n {
            if label[agent].is_some() {
                continue;
            }
            let Some(z_val) = z[agent] else { continue };
            for j in 1..=k {
                if 2 * z_val == y_sums[agent][j - 1] {
                    label[agent] = Some(k + j * k);
                    break;
                }
            }
        }

        // Every labelled agent floods its label over distance k. (The paper
        // lets only the agents at the multiples of k broadcast, which keeps
        // the sources ≥ k apart for its pipelined dissemination; our
        // hop-by-hop flooding costs the same regardless of source density,
        // and letting every labelled agent participate avoids having to
        // re-derive which previously-learned labels sit on the k-grid.)
        sources.clear();
        sources.extend(label.iter().map(|l| l.map(|v| v as u64)));
        flood_nearest_with(
            net,
            link,
            frames,
            &sources,
            label_bits,
            k,
            &mut flood,
            &mut nearest,
        )?;
        for agent in 0..n {
            if label[agent].is_some() {
                continue;
            }
            if let Some((hops, v)) = nearest[agent].from_left {
                label[agent] = Some(v as usize + hops);
            } else if let Some((hops, v)) = nearest[agent].from_right {
                if v as usize > hops {
                    label[agent] = Some(v as usize - hops);
                }
            }
        }

        // CheckCompleteness: only the leader's left neighbour may move
        // clockwise, and only once it knows its own label.
        dirs.clear();
        dirs.extend((0..n).map(|agent| {
            let logical = if is_last[agent] && label[agent].is_some() {
                LocalDirection::Right
            } else {
                LocalDirection::Left
            };
            frames[agent].to_physical(logical)
        }));
        net.step_into(&dirs, &mut bufs)?;
        if !bufs.observations()[0].dist.is_zero() {
            // Undo the displacement of the successful check so that the
            // collision link established earlier (whose gap table refers to
            // the positions at the start of this protocol) stays valid for
            // subsequent phases.
            net.step_reversed_into(&dirs, &mut bufs)?;
            completed = true;
            break;
        }
    }

    if !completed {
        return Err(ProtocolError::RoundBudgetExceeded {
            protocol: "ring-dist",
            budget: net.rounds_used() - start,
        });
    }
    let labels: Vec<usize> = label
        .iter()
        .enumerate()
        .map(|(agent, l)| {
            l.ok_or(ProtocolError::Internal {
                protocol: "ring-dist",
                reason: format!("agent {agent} finished without a label"),
            })
        })
        .collect::<Result<_, _>>()?;

    Ok(RingDistances {
        labels,
        rounds: net.rounds_used() - start,
    })
}

/// Ground-truth verification: labels must be `1..=n` in logical-clockwise
/// order starting at the leader. The logical-clockwise direction is read off
/// the supplied frames (which tests construct to be coherent).
pub fn verify_ring_distances(
    net: &Network<'_>,
    frames: &[Frame],
    is_leader: &[bool],
    dist: &RingDistances,
) -> bool {
    let n = net.len();
    let Some(leader) = is_leader.iter().position(|&l| l) else {
        return false;
    };
    // Determine whether logical right is the objective clockwise direction.
    let cw = frames[leader]
        .to_physical(LocalDirection::Right)
        .to_objective(net.ground_truth_config().chirality(leader))
        == ring_sim::ObjectiveDirection::Clockwise;
    (0..n).all(|agent| {
        let hops = if cw {
            (agent + n - leader) % n
        } else {
            (leader + n - agent) % n
        };
        dist.label(agent) == hops + 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use ring_sim::{Model, RingConfig};

    fn aligning_frames(net: &Network<'_>) -> Vec<Frame> {
        (0..net.len())
            .map(|agent| Frame::new(!net.ground_truth_config().chirality(agent).is_aligned()))
            .collect()
    }

    fn run_ring_dist(n: usize, seed: u64, leader: usize, mirror: bool) {
        let config = RingConfig::builder(n)
            .random_positions(seed + 1)
            .random_chirality(seed + 2)
            .build()
            .unwrap();
        let ids = IdAssignment::random(n, 4 * n as u64, seed + 3);
        let mut net = Network::new(&config, ids, Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        let mut frames = aligning_frames(&net);
        if mirror {
            for f in &mut frames {
                f.flip();
            }
        }
        let mut is_leader = vec![false; n];
        is_leader[leader] = true;
        let dist = ring_distances(&mut net, &link, &frames, &is_leader).unwrap();
        assert!(
            verify_ring_distances(&net, &frames, &is_leader, &dist),
            "n={n} seed={seed} leader={leader} mirror={mirror}: labels {:?}",
            dist.labels()
        );
    }

    #[test]
    fn labels_are_correct_on_small_rings() {
        for n in [5usize, 6, 8, 9, 12] {
            run_ring_dist(n, 10 * n as u64, n / 3, false);
        }
    }

    #[test]
    fn labels_are_correct_on_a_larger_ring() {
        run_ring_dist(37, 123, 20, false);
    }

    #[test]
    fn mirrored_run_counts_the_other_way() {
        run_ring_dist(11, 55, 4, true);
    }

    #[test]
    fn round_count_grows_sublinearly() {
        // Measure rounds for two sizes and check the growth is far below
        // linear (the bound is O(√n log N)).
        let mut rounds = Vec::new();
        for &n in &[16usize, 64] {
            let config = RingConfig::builder(n)
                .random_positions(n as u64)
                .build()
                .unwrap();
            let ids = IdAssignment::random(n, 1 << 10, 7);
            let mut net = Network::new(&config, ids, Model::Perceptive).unwrap();
            let (link, _) = RingLink::establish(&mut net).unwrap();
            let frames = vec![Frame::identity(); n];
            let mut is_leader = vec![false; n];
            is_leader[0] = true;
            let dist = ring_distances(&mut net, &link, &frames, &is_leader).unwrap();
            rounds.push(dist.rounds());
        }
        // Quadrupling n should much less than quadruple the rounds.
        assert!(
            rounds[1] < rounds[0] * 4,
            "rounds {:?} do not look sublinear",
            rounds
        );
    }
}
