//! `Distances`: perceptive-model location discovery in `n/2 + o(n)` rounds
//! (Algorithm 6, Proposition 40, Lemma 41, Theorem 42).
//!
//! Prerequisites (all built here): a nontrivial move (`NMoveS`), a leader
//! and a common sense of direction (Algorithm 2), the collision link, and
//! every agent's ring distance from the leader in **both** directions
//! (`RingDist` run twice), from which every agent also learns `n`.
//!
//! The measurement phase then alternates agents by label parity
//! (`Convolution` rounds, rotation index 2), sweeping a single exception
//! agent so that the collision and displacement observations of each round
//! contribute two fresh linear equations per agent; a handful of `Pivot`
//! rounds (rotation index 0, one half of the ring against the other) tie
//! the two parity classes together. Every observation is a
//! contiguous-interval equation over the gap vector, so each agent tracks
//! its knowledge with the union–find structure of
//! [`crate::knowledge::GapKnowledge`] and is done when a single component
//! remains — after `n/2` Convolution rounds plus O(1) pivots.

use crate::coordination::leader::elect_leader_with_move;
use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use crate::knowledge::GapKnowledge;
use crate::locate::{cumulative_dist_logical, AgentView, LocationDiscovery, LocationMethod};
use crate::perceptive::link::RingLink;
use crate::perceptive::nmove::nmove_s;
use crate::perceptive::ringdist::ring_distances;
use ring_sim::{ArcLength, Frame, LocalDirection, Observation};

/// The logical direction an agent with a given label takes in a Convolution
/// round with the given exception label: odd labels move clockwise, even
/// labels anticlockwise, except the exception (always even) which also moves
/// clockwise.
fn convolution_direction(label: usize, exception: usize) -> LocalDirection {
    if label % 2 == 1 || label == exception {
        LocalDirection::Right
    } else {
        LocalDirection::Left
    }
}

/// The logical direction in a Pivot round anchored at label `c`: the `n/2`
/// labels following `c` clockwise move anticlockwise (towards `c`) and the
/// rest move clockwise, so the rotation index is 0.
fn pivot_direction(label: usize, c: usize, n: usize) -> LocalDirection {
    // Hops from c+1 to label going clockwise.
    let offset = (label + n - 1 - (c % n)) % n;
    if offset < n / 2 {
        LocalDirection::Left
    } else {
        LocalDirection::Right
    }
}

/// For every label, the number of label-steps to the nearest agent ahead
/// (clockwise) that moves anticlockwise, and to the nearest agent behind
/// (anticlockwise) that moves clockwise — under the given per-label rule.
/// These determine which contiguous gap interval a first-collision
/// observation spans (Proposition 4).
fn collision_spans_into(
    rule: &dyn Fn(usize) -> LocalDirection,
    n: usize,
    scratch: &mut MeasureScratch,
) {
    scratch.rule_dirs.clear();
    scratch.rule_dirs.extend((1..=n).map(rule));
    let dirs = &scratch.rule_dirs;
    let ahead = &mut scratch.ahead;
    let behind = &mut scratch.behind;
    ahead.clear();
    ahead.resize(n + 1, 0);
    behind.clear();
    behind.resize(n + 1, 0);
    for label in 1..=n {
        let mut d = 0;
        for step in 1..=n {
            if dirs[(label - 1 + step) % n] == LocalDirection::Left {
                d = step;
                break;
            }
        }
        ahead[label] = d;
        let mut d = 0;
        for step in 1..=n {
            if dirs[(label + n - 1 - step) % n] == LocalDirection::Right {
                d = step;
                break;
            }
        }
        behind[label] = d;
    }
}

/// Reusable scratch for the measurement rounds of Algorithm 6: the step
/// buffers, the physical direction buffer and the collision-span tables.
#[derive(Clone, Debug, Default)]
struct MeasureScratch {
    step: StepBuffers,
    dirs: Vec<LocalDirection>,
    rule_dirs: Vec<LocalDirection>,
    ahead: Vec<usize>,
    behind: Vec<usize>,
}

/// Records the equations contributed by one round of the measurement phase
/// for one agent.
#[allow(clippy::too_many_arguments)]
fn record_equations(
    knowledge: &mut GapKnowledge,
    n: usize,
    label: usize,
    site: usize,
    logical_obs: &Observation,
    direction: LocalDirection,
    ahead: &[usize],
    behind: &[usize],
) -> Result<(), ProtocolError> {
    let fail = |reason: String| ProtocolError::Internal {
        protocol: "location-discovery-perceptive",
        reason,
    };
    // Displacement equation (only when the round rotated the ring).
    if !logical_obs.dist.is_zero() {
        // Rotation index 2: the agent moved two sites clockwise.
        knowledge
            .add_cw_arc((site - 1) % n, (site + 1) % n, logical_obs.dist)
            .map_err(|e| fail(e.to_string()))?;
    }
    // Collision equation.
    if let Some(coll) = logical_obs.coll {
        let doubled = ArcLength::from_ticks(coll.doubled_ticks());
        match direction {
            LocalDirection::Right => {
                let span = ahead[label];
                if span > 0 && span < n {
                    knowledge
                        .add_cw_arc((site - 1) % n, (site - 1 + span) % n, doubled)
                        .map_err(|e| fail(e.to_string()))?;
                }
            }
            LocalDirection::Left => {
                let span = behind[label];
                if span > 0 && span < n {
                    knowledge
                        .add_cw_arc((site - 1 + n - span) % n, (site - 1) % n, doubled)
                        .map_err(|e| fail(e.to_string()))?;
                }
            }
            LocalDirection::Idle => {}
        }
    }
    Ok(())
}

/// Location discovery in the perceptive model with even `n`
/// (Theorem 42): `n/2 + O(√n log² N)` rounds.
///
/// # Errors
///
/// Propagates sub-protocol and substrate errors; returns
/// [`ProtocolError::Internal`] if the measurement schedule ends with
/// incomplete knowledge (which the tests show does not happen).
pub fn discover_locations_perceptive(
    net: &mut Network<'_>,
) -> Result<LocationDiscovery, ProtocolError> {
    let n = net.len();
    let start = net.rounds_used();

    // Phase 1: coordination — nontrivial move, common direction, leader.
    let nm = nmove_s(net, 0x5eed)?;
    let election = elect_leader_with_move(net, &nm)?;
    let frames = election.frames().to_vec();
    let leader_flags = election.leader_flags().to_vec();

    // Phase 2: the collision link (established after the coordination phase
    // so that its gap table matches the positions used from now on).
    let (link, _) = RingLink::establish(net)?;

    // Phase 3: ring distances in both directions; every agent learns n.
    let cw = ring_distances(net, &link, &frames, &leader_flags)?;
    let mirrored: Vec<Frame> = frames
        .iter()
        .map(|f| {
            let mut g = *f;
            g.flip();
            g
        })
        .collect();
    let acw = ring_distances(net, &link, &mirrored, &leader_flags)?;
    let mut known_n: Vec<Option<u64>> = (0..n)
        .map(|agent| {
            if leader_flags[agent] {
                None
            } else {
                Some((cw.label(agent) + acw.label(agent) - 2) as u64)
            }
        })
        .collect();
    // The leader learns n from either neighbour.
    let exchanged = link.exchange_frames(net, &known_n, net.id_bits() + 1)?;
    for agent in 0..n {
        if known_n[agent].is_none() {
            known_n[agent] = exchanged[agent].from_right.or(exchanged[agent].from_left);
        }
    }
    for (agent, k) in known_n.iter().enumerate() {
        if *k != Some(n as u64) {
            return Err(ProtocolError::Internal {
                protocol: "location-discovery-perceptive",
                reason: format!("agent {agent} believes n = {k:?}, actual n = {n}"),
            });
        }
    }

    // Phase 4: the measurement schedule.
    let labels = cw.labels().to_vec();
    let delta_start: Vec<ArcLength> = (0..n)
        .map(|agent| cumulative_dist_logical(net, &frames, agent))
        .collect();

    let mut knowledge: Vec<GapKnowledge> = (0..n).map(|_| GapKnowledge::new(n)).collect();
    let mut rotations = 0usize;
    let mut scratch = MeasureScratch::default();

    // Convolution sweep: n/2 rounds of rotation index 2, the exception agent
    // sweeping the even labels downwards.
    for i in 1..=n / 2 {
        let exception = n - 2 * (i - 1);
        let rule = move |label: usize| convolution_direction(label, exception);
        run_measurement_round(
            net,
            &frames,
            &labels,
            n,
            &rule,
            rotations,
            &mut knowledge,
            &mut scratch,
        )?;
        rotations += 2;
    }

    // Pivot rounds (rotation index 0) to tie the parity classes together.
    let mut pivot_anchor = n;
    for _ in 0..6 {
        if knowledge.iter().all(|k| k.is_complete()) {
            break;
        }
        let c = pivot_anchor;
        pivot_anchor = if pivot_anchor <= 1 {
            n
        } else {
            pivot_anchor - 1
        };
        let rule = move |label: usize| pivot_direction(label, c, n);
        run_measurement_round(
            net,
            &frames,
            &labels,
            n,
            &rule,
            rotations,
            &mut knowledge,
            &mut scratch,
        )?;
    }

    if let Some(agent) = knowledge.iter().position(|k| !k.is_complete()) {
        return Err(ProtocolError::Internal {
            protocol: "location-discovery-perceptive",
            reason: format!(
                "agent {agent} has incomplete knowledge after the measurement schedule"
            ),
        });
    }

    // Phase 5: assemble the per-agent views. Knowledge is indexed by label
    // sites; re-index it relative to each agent before applying the
    // displacement correction.
    let views = (0..n)
        .map(|agent| {
            let gaps = knowledge[agent].gaps().expect("checked complete");
            let m = labels[agent];
            let relative: Vec<ArcLength> = (0..n).map(|t| gaps[(m - 1 + t) % n]).collect();
            AgentView::from_measurement(&relative, delta_start[agent])
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(LocationDiscovery::new(
        views,
        frames,
        net.rounds_used() - start,
        LocationMethod::PerceptiveConvolution,
    ))
}

/// Executes one measurement round under the given per-label direction rule
/// and records every agent's equations. All buffers live in `scratch`, so
/// the round allocates nothing once the vectors have grown to the ring
/// size.
#[allow(clippy::too_many_arguments)]
fn run_measurement_round(
    net: &mut Network<'_>,
    frames: &[Frame],
    labels: &[usize],
    n: usize,
    rule: &dyn Fn(usize) -> LocalDirection,
    rotations: usize,
    knowledge: &mut [GapKnowledge],
    scratch: &mut MeasureScratch,
) -> Result<(), ProtocolError> {
    scratch.dirs.clear();
    scratch
        .dirs
        .extend((0..n).map(|agent| frames[agent].to_physical(rule(labels[agent]))));
    collision_spans_into(rule, n, scratch);
    net.step_into(&scratch.dirs, &mut scratch.step)?;
    for agent in 0..n {
        let logical = frames[agent].observation_to_logical(scratch.step.observations()[agent]);
        let label = labels[agent];
        let site = (label - 1 + rotations) % n + 1;
        record_equations(
            &mut knowledge[agent],
            n,
            label,
            site,
            &logical,
            rule(label),
            &scratch.ahead,
            &scratch.behind,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use crate::locate::verify_location_discovery;
    use ring_sim::{Model, RingConfig};

    #[test]
    fn convolution_and_pivot_rules_have_expected_rotation() {
        let n = 10;
        // Convolution: n/2 + 1 agents move right.
        let rights = (1..=n)
            .filter(|&l| convolution_direction(l, 6) == LocalDirection::Right)
            .count();
        assert_eq!(rights, n / 2 + 1);
        // Pivot: exactly half move each way.
        for c in [n, n - 1, n - 2] {
            let rights = (1..=n)
                .filter(|&l| pivot_direction(l, c, n) == LocalDirection::Right)
                .count();
            assert_eq!(rights, n / 2, "pivot {c}");
        }
    }

    #[test]
    fn collision_spans_match_the_pattern() {
        let n = 8;
        let rule = |label: usize| convolution_direction(label, 8);
        let mut scratch = MeasureScratch::default();
        collision_spans_into(&rule, n, &mut scratch);
        // Label 1 moves right; label 2 moves left: span 1.
        assert_eq!(scratch.ahead[1], 1);
        // Label 7 moves right, label 8 is the exception (right), label 1 is
        // odd (right), label 2 left: span 3.
        assert_eq!(scratch.ahead[7], 3);
        // Label 2 moves left; label 1 (behind it) moves right: span 1.
        assert_eq!(scratch.behind[2], 1);
    }

    #[test]
    fn perceptive_discovery_recovers_all_positions_small() {
        for &(n, seed) in &[(6usize, 1u64), (8, 2), (10, 3)] {
            let config = RingConfig::builder(n)
                .random_positions(seed * 19 + 5)
                .random_chirality(seed * 23 + 7)
                .build()
                .unwrap();
            let ids = IdAssignment::random(n, 8 * n as u64, seed + 11);
            let mut net = Network::new(&config, ids, Model::Perceptive).unwrap();
            let discovery = discover_locations_perceptive(&mut net).unwrap();
            assert!(
                verify_location_discovery(&net, &discovery),
                "n={n} seed={seed}"
            );
            assert_eq!(discovery.method(), LocationMethod::PerceptiveConvolution);
        }
    }

    #[test]
    fn perceptive_discovery_on_a_larger_even_ring() {
        let n = 26;
        let config = RingConfig::builder(n)
            .random_positions(97)
            .random_chirality(98)
            .build()
            .unwrap();
        let ids = IdAssignment::random(n, 1 << 9, 99);
        let mut net = Network::new(&config, ids, Model::Perceptive).unwrap();
        let discovery = discover_locations_perceptive(&mut net).unwrap();
        assert!(verify_location_discovery(&net, &discovery));
    }
}
