//! Information dissemination over bounded ring distances (Corollaries 33
//! and 34 of the paper), built on the collision link of
//! [`crate::perceptive::link`].
//!
//! Two flooding primitives cover everything the higher-level algorithms
//! need:
//!
//! * [`flood_max`] — every agent learns the **maximum** value held by any
//!   source within a given ring distance (in either direction). This is the
//!   primitive behind local-leader election in `NMoveS` (Algorithm 4):
//!   orientation does not matter because the neighbourhood is symmetric.
//! * [`flood_nearest`] — every agent learns the value of the **nearest**
//!   source on each *logical* side together with its hop distance. This
//!   requires a common sense of direction (the frames produced by direction
//!   agreement) and is the primitive behind the label dissemination of
//!   `RingDist` (Algorithm 5).
//!
//! Both primitives work hop by hop: one frame exchange extends every
//! agent's horizon by exactly one ring position, so after `d` hops the
//! information of every source within distance `d` has arrived, and nothing
//! from farther away.

use crate::error::ProtocolError;
use crate::exec::Network;
use crate::perceptive::link::{FrameBuffers, NeighborFrames, RingLink};
use ring_sim::Frame;

/// Reusable scratch for the zero-alloc flooding primitives
/// ([`flood_max_with`], [`flood_nearest_with`]): the frame-exchange buffers
/// plus per-hop carry registers.
#[derive(Clone, Debug, Default)]
pub struct FloodBuffers {
    frames: FrameBuffers,
    rx: Vec<NeighborFrames>,
    carry_cw: Vec<Option<u64>>,
    carry_acw: Vec<Option<u64>>,
}

impl FloodBuffers {
    /// Creates an empty buffer set (vectors grow to the ring size on first
    /// use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Result of [`flood_nearest`] for one agent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct NearestSources {
    /// Hop distance and value of the nearest source on the agent's logical
    /// right, if one lies within the flooding distance.
    pub from_right: Option<(usize, u64)>,
    /// Hop distance and value of the nearest source on the agent's logical
    /// left, if one lies within the flooding distance.
    pub from_left: Option<(usize, u64)>,
}

/// Floods the maximum of the sources' values over ring distance `distance`.
///
/// `candidate[i]` is `Some(v)` if agent `i` is a source with value `v`.
/// Returns, for every agent, the maximum value among all sources within ring
/// distance `distance` of it (its own value included), or `None` if there is
/// no such source. Costs `distance` frame exchanges, i.e.
/// `2 · distance · (bits + 1)` rounds.
///
/// # Errors
///
/// Propagates substrate and link errors.
pub fn flood_max(
    net: &mut Network<'_>,
    link: &RingLink,
    candidate: &[Option<u64>],
    bits: u32,
    distance: usize,
) -> Result<(Vec<Option<u64>>, u64), ProtocolError> {
    let mut bufs = FloodBuffers::new();
    let mut best = Vec::new();
    let rounds = flood_max_with(net, link, candidate, bits, distance, &mut bufs, &mut best)?;
    Ok((best, rounds))
}

/// Zero-alloc variant of [`flood_max`]: all rounds execute through
/// caller-owned buffers and the per-agent maxima are written into `best`
/// (cleared first). Returns the rounds consumed.
///
/// # Errors
///
/// Same as [`flood_max`].
pub fn flood_max_with(
    net: &mut Network<'_>,
    link: &RingLink,
    candidate: &[Option<u64>],
    bits: u32,
    distance: usize,
    bufs: &mut FloodBuffers,
    best: &mut Vec<Option<u64>>,
) -> Result<u64, ProtocolError> {
    let n = net.len();
    if candidate.len() != n {
        return Err(ProtocolError::LengthMismatch {
            what: "candidate values",
            got: candidate.len(),
            expected: n,
        });
    }
    let start = net.rounds_used();
    best.clear();
    best.extend_from_slice(candidate);
    for _hop in 0..distance {
        link.exchange_frames_with(net, best, bits, &mut bufs.frames, &mut bufs.rx)?;
        for (slot, rx) in best.iter_mut().zip(&bufs.rx) {
            let incoming = rx.from_right.into_iter().chain(rx.from_left);
            for v in incoming {
                *slot = Some(match *slot {
                    Some(b) => b.max(v),
                    None => v,
                });
            }
        }
    }
    Ok(net.rounds_used() - start)
}

/// Floods source values over ring distance `distance`, letting every agent
/// learn the nearest source on each **logical** side (per the supplied
/// frames) together with its hop distance.
///
/// Costs two frame exchanges per hop (one per stream direction), i.e.
/// `4 · distance · (bits + 1)` rounds.
///
/// # Errors
///
/// Propagates substrate and link errors.
pub fn flood_nearest(
    net: &mut Network<'_>,
    link: &RingLink,
    frames: &[Frame],
    values: &[Option<u64>],
    bits: u32,
    distance: usize,
) -> Result<(Vec<NearestSources>, u64), ProtocolError> {
    let mut bufs = FloodBuffers::new();
    let mut result = Vec::new();
    let rounds = flood_nearest_with(
        net,
        link,
        frames,
        values,
        bits,
        distance,
        &mut bufs,
        &mut result,
    )?;
    Ok((result, rounds))
}

/// Zero-alloc variant of [`flood_nearest`]: all rounds execute through
/// caller-owned buffers and the per-agent nearest sources are written into
/// `result` (cleared first). Returns the rounds consumed.
///
/// # Errors
///
/// Same as [`flood_nearest`].
#[allow(clippy::too_many_arguments)]
pub fn flood_nearest_with(
    net: &mut Network<'_>,
    link: &RingLink,
    frames: &[Frame],
    values: &[Option<u64>],
    bits: u32,
    distance: usize,
    bufs: &mut FloodBuffers,
    result: &mut Vec<NearestSources>,
) -> Result<u64, ProtocolError> {
    let n = net.len();
    if values.len() != n || frames.len() != n {
        return Err(ProtocolError::LengthMismatch {
            what: "source values / frames",
            got: values.len().min(frames.len()),
            expected: n,
        });
    }
    let start = net.rounds_used();
    result.clear();
    result.resize(n, NearestSources::default());

    // Shift registers: `carry_cw[i]` is the value of the source exactly
    // `hop − 1` logical-left positions away from agent `i` (it travels in
    // the logical-clockwise direction), and symmetrically for `carry_acw`.
    // Each hop's new carry depends only on that hop's received frames, so
    // the registers are overwritten in place.
    bufs.carry_cw.clear();
    bufs.carry_cw.extend_from_slice(values);
    bufs.carry_acw.clear();
    bufs.carry_acw.extend_from_slice(values);

    for hop in 1..=distance {
        // Stream moving logically clockwise: every agent forwards its carry;
        // receivers take the value arriving from their logical left.
        link.exchange_frames_with(net, &bufs.carry_cw, bits, &mut bufs.frames, &mut bufs.rx)?;
        for agent in 0..n {
            let from_logical_left = if frames[agent].is_flipped() {
                bufs.rx[agent].from_right
            } else {
                bufs.rx[agent].from_left
            };
            bufs.carry_cw[agent] = from_logical_left;
            if let Some(v) = from_logical_left {
                if result[agent].from_left.is_none() {
                    result[agent].from_left = Some((hop, v));
                }
            }
        }

        // Stream moving logically anticlockwise.
        link.exchange_frames_with(net, &bufs.carry_acw, bits, &mut bufs.frames, &mut bufs.rx)?;
        for agent in 0..n {
            let from_logical_right = if frames[agent].is_flipped() {
                bufs.rx[agent].from_left
            } else {
                bufs.rx[agent].from_right
            };
            bufs.carry_acw[agent] = from_logical_right;
            if let Some(v) = from_logical_right {
                if result[agent].from_right.is_none() {
                    result[agent].from_right = Some((hop, v));
                }
            }
        }
    }

    Ok(net.rounds_used() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use ring_sim::{Model, RingConfig};

    fn setup(n: usize, seed: u64) -> (RingConfig, IdAssignment) {
        let config = RingConfig::builder(n)
            .random_positions(seed + 1)
            .random_chirality(seed + 2)
            .build()
            .unwrap();
        let ids = IdAssignment::random(n, 512, seed + 3);
        (config, ids)
    }

    /// Frames that align every agent's logical right with the objective
    /// clockwise direction (a valid direction-agreement outcome, used to
    /// test logical-side flooding against ground truth).
    fn aligning_frames(net: &Network<'_>) -> Vec<Frame> {
        (0..net.len())
            .map(|agent| Frame::new(!net.ground_truth_config().chirality(agent).is_aligned()))
            .collect()
    }

    #[test]
    fn flood_max_respects_the_distance_bound() {
        let n = 11;
        let (config, ids) = setup(n, 40);
        let mut net = Network::new(&config, ids, Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();

        // One source with value 99 at agent 0, another with value 50 at
        // agent 5.
        let mut candidate = vec![None; n];
        candidate[0] = Some(99);
        candidate[5] = Some(50);
        let (best, _) = flood_max(&mut net, &link, &candidate, 8, 2).unwrap();

        // Agents within 2 hops of agent 0 see 99.
        for agent in [9usize, 10, 0, 1, 2] {
            assert_eq!(best[agent], Some(99), "agent {agent}");
        }
        // Agents within 2 hops of agent 5 only see 50.
        for agent in [4usize, 6] {
            assert_eq!(best[agent], Some(50), "agent {agent}");
        }
        // Agent 8 is 3 hops from both sources.
        assert_eq!(best[8], None);
        assert!(net.ground_truth_at_initial_positions());
    }

    #[test]
    fn flood_nearest_reports_sides_and_hops() {
        let n = 9;
        let (config, ids) = setup(n, 77);
        let mut net = Network::new(&config, ids, Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        let frames = aligning_frames(&net);

        // A single source at agent 3 with value 42, flooded 3 hops.
        let mut values = vec![None; n];
        values[3] = Some(42);
        let (nearest, _) = flood_nearest(&mut net, &link, &frames, &values, 8, 3).unwrap();

        // With all logical frames equal to the objective clockwise
        // direction, agent 4 sees the source 1 hop to its logical left,
        // agent 6 sees it 3 hops to its left, agent 2 sees it 1 hop to its
        // right, agent 0 sees it 3 hops to its right.
        assert_eq!(nearest[4].from_left, Some((1, 42)));
        assert_eq!(nearest[4].from_right, None);
        assert_eq!(nearest[6].from_left, Some((3, 42)));
        assert_eq!(nearest[2].from_right, Some((1, 42)));
        assert_eq!(nearest[0].from_right, Some((3, 42)));
        // Agent 7 is 4 hops away on both sides: nothing received.
        assert_eq!(nearest[7], NearestSources::default());
        // The source itself does not hear its own value.
        assert_eq!(nearest[3], NearestSources::default());
    }

    #[test]
    fn flood_nearest_prefers_the_nearest_source() {
        let n = 10;
        let (config, ids) = setup(n, 90);
        let mut net = Network::new(&config, ids, Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        let frames = aligning_frames(&net);

        let mut values = vec![None; n];
        values[2] = Some(7);
        values[4] = Some(9);
        let (nearest, _) = flood_nearest(&mut net, &link, &frames, &values, 8, 5).unwrap();
        // Agent 6 has sources at logical-left distances 2 (value 9) and 4
        // (value 7): the nearest wins.
        assert_eq!(nearest[6].from_left, Some((2, 9)));
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let (config, ids) = setup(8, 5);
        let mut net = Network::new(&config, ids, Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        assert!(matches!(
            flood_max(&mut net, &link, &[None; 3], 4, 1),
            Err(ProtocolError::LengthMismatch { .. })
        ));
        assert!(matches!(
            flood_nearest(&mut net, &link, &[Frame::identity(); 8], &[None; 3], 4, 1),
            Err(ProtocolError::LengthMismatch { .. })
        ));
    }
}
