//! The collision-based communication layer (Proposition 31 / Corollary 32).
//!
//! Once an agent knows the gaps to its neighbours and their relative
//! chirality (from [`crate::perceptive::neighbors`]), two rounds suffice to
//! exchange one bit with **both** neighbours simultaneously: an agent
//! encodes its bit in its direction of movement, moves once each way (the
//! second round is the reversal of the first, which also restores all
//! positions), and decodes each neighbour's bit from whether its first
//! collision on that side happened at exactly half the known gap.
//!
//! On top of the bit exchange, [`RingLink::exchange_frames`] ships
//! fixed-width optional values (a presence bit plus a payload), which is the
//! unit the dissemination primitives are built from.

use crate::error::ProtocolError;
use crate::exec::Network;
use crate::perceptive::neighbors::{discover_neighbors, NeighborInfo, NeighborMap};
use ring_sim::{LocalDirection, Observation};

/// Bits received from the two neighbours in one exchange slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeighborBits {
    /// Bit sent by the neighbour on the agent's right.
    pub from_right: bool,
    /// Bit sent by the neighbour on the agent's left.
    pub from_left: bool,
}

/// Optional values received from the two neighbours in one frame exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeighborFrames {
    /// Value sent by the neighbour on the agent's right, if it had one.
    pub from_right: Option<u64>,
    /// Value sent by the neighbour on the agent's left, if it had one.
    pub from_left: Option<u64>,
}

/// A communication link between ring neighbours, built purely out of
/// collisions.
#[derive(Clone, Debug)]
pub struct RingLink {
    infos: Vec<NeighborInfo>,
}

impl RingLink {
    /// Establishes the link by running neighbour discovery. Returns the link
    /// together with the number of rounds spent.
    ///
    /// # Errors
    ///
    /// Propagates errors from neighbour discovery.
    pub fn establish(net: &mut Network<'_>) -> Result<(Self, u64), ProtocolError> {
        let map = discover_neighbors(net)?;
        let rounds = map.rounds();
        Ok((Self::from_neighbor_map(&map), rounds))
    }

    /// Builds a link from an existing neighbour map.
    pub fn from_neighbor_map(map: &NeighborMap) -> Self {
        RingLink {
            infos: map.infos().to_vec(),
        }
    }

    /// Number of agents on the link.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the link is empty (never true for valid rings).
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Per-agent neighbour information the link was built from.
    pub fn infos(&self) -> &[NeighborInfo] {
        &self.infos
    }

    /// Exchanges one bit with both neighbours (Proposition 31). `bits[i]` is
    /// the bit agent `i` transmits; the result contains the bits each agent
    /// received. Costs 4 rounds (each of the two information rounds is
    /// followed by its reversal, so both start from — and the exchange ends
    /// at — the same positions, which is what makes the gap comparison in
    /// the decoder valid).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; returns [`ProtocolError::LengthMismatch`]
    /// if `bits` has the wrong length.
    pub fn exchange_bits(
        &self,
        net: &mut Network<'_>,
        bits: &[bool],
    ) -> Result<Vec<NeighborBits>, ProtocolError> {
        let n = self.infos.len();
        if bits.len() != n {
            return Err(ProtocolError::LengthMismatch {
                what: "bits",
                got: bits.len(),
                expected: n,
            });
        }
        // Round A: bit 1 ↦ right, bit 0 ↦ left; round B: the opposite
        // encoding. Each is undone immediately so that both information
        // rounds see the same neighbour gaps.
        let dirs_a: Vec<LocalDirection> = bits.iter().map(|&b| LocalDirection::from_bit(b)).collect();
        let obs_a = net.step(&dirs_a)?;
        net.step_reversed(&dirs_a)?;
        let dirs_b: Vec<LocalDirection> = dirs_a.iter().map(|d| d.opposite()).collect();
        let obs_b = net.step(&dirs_b)?;
        net.step_reversed(&dirs_b)?;

        let mut out = Vec::with_capacity(n);
        for agent in 0..n {
            let info = self.infos[agent];
            // Observations of the rounds in which this agent moved right and
            // left respectively.
            let (obs_when_right, obs_when_left): (&Observation, &Observation) = if bits[agent] {
                (&obs_a[agent], &obs_b[agent])
            } else {
                (&obs_b[agent], &obs_a[agent])
            };
            let right_round_is_a = bits[agent];
            let left_round_is_a = !bits[agent];

            let right_approached = obs_when_right.coll == Some(info.right_gap.half());
            let left_approached = obs_when_left.coll == Some(info.left_gap.half());

            // The right neighbour approached iff it physically moved towards
            // this agent, i.e. (same chirality ⇒ it moved left, opposite ⇒ it
            // moved right). In round A it moved right iff its bit is 1.
            let right_moved_right_in_that_round = if info.right_same_chirality {
                !right_approached
            } else {
                right_approached
            };
            let from_right = if right_round_is_a {
                right_moved_right_in_that_round
            } else {
                !right_moved_right_in_that_round
            };

            // The left neighbour approached iff it physically moved towards
            // this agent, i.e. (same chirality ⇒ it moved right, opposite ⇒
            // it moved left).
            let left_moved_right_in_that_round = if info.left_same_chirality {
                left_approached
            } else {
                !left_approached
            };
            let from_left = if left_round_is_a {
                left_moved_right_in_that_round
            } else {
                !left_moved_right_in_that_round
            };

            out.push(NeighborBits {
                from_right,
                from_left,
            });
        }
        Ok(out)
    }

    /// Exchanges a fixed-width optional value with both neighbours: one
    /// presence bit followed by `bits` payload bits (most significant
    /// first). Costs `4 · (bits + 1)` rounds and restores all positions.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; returns [`ProtocolError::LengthMismatch`]
    /// if `values` has the wrong length.
    pub fn exchange_frames(
        &self,
        net: &mut Network<'_>,
        values: &[Option<u64>],
        bits: u32,
    ) -> Result<Vec<NeighborFrames>, ProtocolError> {
        let n = self.infos.len();
        if values.len() != n {
            return Err(ProtocolError::LengthMismatch {
                what: "frame values",
                got: values.len(),
                expected: n,
            });
        }
        // Presence bit.
        let presence: Vec<bool> = values.iter().map(|v| v.is_some()).collect();
        let mut right_present = Vec::with_capacity(n);
        let mut left_present = Vec::with_capacity(n);
        for nb in self.exchange_bits(net, &presence)? {
            right_present.push(nb.from_right);
            left_present.push(nb.from_left);
        }
        // Payload bits, most significant first.
        let mut right_value = vec![0u64; n];
        let mut left_value = vec![0u64; n];
        for bit in (0..bits).rev() {
            let payload: Vec<bool> = values
                .iter()
                .map(|v| v.is_some_and(|x| (x >> bit) & 1 == 1))
                .collect();
            let exchanged = self.exchange_bits(net, &payload)?;
            for agent in 0..n {
                if exchanged[agent].from_right {
                    right_value[agent] |= 1 << bit;
                }
                if exchanged[agent].from_left {
                    left_value[agent] |= 1 << bit;
                }
            }
        }
        Ok((0..n)
            .map(|agent| NeighborFrames {
                from_right: right_present[agent].then_some(right_value[agent]),
                from_left: left_present[agent].then_some(left_value[agent]),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use ring_sim::{Chirality, Model, RingConfig};

    /// Ground-truth expectation: what each agent should receive given who its
    /// physical neighbours are and everybody's chirality.
    fn expected_bits(net: &Network<'_>, bits: &[bool]) -> Vec<NeighborBits> {
        let config = net.ground_truth_config();
        let n = net.len();
        (0..n)
            .map(|agent| {
                let (right_neighbor, left_neighbor) = if config.chirality(agent).is_aligned() {
                    ((agent + 1) % n, (agent + n - 1) % n)
                } else {
                    ((agent + n - 1) % n, (agent + 1) % n)
                };
                NeighborBits {
                    from_right: bits[right_neighbor],
                    from_left: bits[left_neighbor],
                }
            })
            .collect()
    }

    #[test]
    fn bit_exchange_delivers_both_neighbours_bits() {
        for seed in 0..8u64 {
            let n = 6 + (seed as usize % 3);
            let config = RingConfig::builder(n)
                .random_positions(seed + 11)
                .random_chirality(seed + 29)
                .build()
                .unwrap();
            let mut net = Network::new(
                &config,
                IdAssignment::random(n, 128, seed + 5),
                Model::Perceptive,
            )
            .unwrap();
            let (link, _) = RingLink::establish(&mut net).unwrap();
            // An arbitrary but varied bit pattern.
            let bits: Vec<bool> = (0..n).map(|i| (i as u64 * 7 + seed) % 3 == 1).collect();
            let received = link.exchange_bits(&mut net, &bits).unwrap();
            assert_eq!(received, expected_bits(&net, &bits), "seed {seed}");
            assert!(net.ground_truth_at_initial_positions());
        }
    }

    #[test]
    fn frame_exchange_delivers_optional_values() {
        let n = 8;
        let config = RingConfig::builder(n)
            .random_positions(3)
            .explicit_chirality(vec![
                Chirality::Aligned,
                Chirality::Reversed,
                Chirality::Aligned,
                Chirality::Aligned,
                Chirality::Reversed,
                Chirality::Reversed,
                Chirality::Aligned,
                Chirality::Reversed,
            ])
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(n, 64, 9), Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        let values: Vec<Option<u64>> = (0..n as u64)
            .map(|i| if i % 3 == 0 { Some(i * 13 + 5) } else { None })
            .collect();
        let rounds_before = net.rounds_used();
        let frames = link.exchange_frames(&mut net, &values, 10).unwrap();
        assert_eq!(net.rounds_used() - rounds_before, 4 * 11);

        let config = net.ground_truth_config();
        for (agent, frame) in frames.iter().enumerate() {
            let (right_neighbor, left_neighbor) = if config.chirality(agent).is_aligned() {
                ((agent + 1) % n, (agent + n - 1) % n)
            } else {
                ((agent + n - 1) % n, (agent + 1) % n)
            };
            assert_eq!(frame.from_right, values[right_neighbor]);
            assert_eq!(frame.from_left, values[left_neighbor]);
        }
    }

    #[test]
    fn wrong_lengths_are_rejected() {
        let config = RingConfig::builder(6).random_positions(1).build().unwrap();
        let mut net =
            Network::new(&config, IdAssignment::consecutive(6), Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        assert!(matches!(
            link.exchange_bits(&mut net, &[true, false]),
            Err(ProtocolError::LengthMismatch { .. })
        ));
        assert!(matches!(
            link.exchange_frames(&mut net, &[None, None], 4),
            Err(ProtocolError::LengthMismatch { .. })
        ));
    }

    /// `ArcLength::half` is what the decoder compares against; make sure the
    /// gap parity invariant that makes it exact really holds in discovery.
    #[test]
    fn observed_gaps_are_even() {
        let config = RingConfig::builder(7).random_positions(4).build().unwrap();
        let mut net =
            Network::new(&config, IdAssignment::consecutive(7), Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        for info in link.infos() {
            assert_eq!(info.right_gap.ticks() % 2, 0);
            assert_eq!(info.left_gap.ticks() % 2, 0);
            let _ = info.right_gap.half();
        }
    }
}
