//! The collision-based communication layer (Proposition 31 / Corollary 32).
//!
//! Once an agent knows the gaps to its neighbours and their relative
//! chirality (from [`crate::perceptive::neighbors`]), two rounds suffice to
//! exchange one bit with **both** neighbours simultaneously: an agent
//! encodes its bit in its direction of movement, moves once each way (the
//! second round is the reversal of the first, which also restores all
//! positions), and decodes each neighbour's bit from whether its first
//! collision on that side happened at exactly half the known gap.
//!
//! On top of the bit exchange, [`RingLink::exchange_frames`] ships
//! fixed-width optional values (a presence bit plus a payload), which is the
//! unit the dissemination primitives are built from.

use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use crate::perceptive::neighbors::{discover_neighbors, NeighborInfo, NeighborMap};
use ring_sim::{LocalDirection, Observation};

/// Reusable scratch for the zero-alloc bit exchange
/// ([`RingLink::exchange_bits_with`]): one [`StepBuffers`] for the four
/// rounds, one direction buffer and a copy of the first information round's
/// observations (the second information round's live in the step buffers).
#[derive(Clone, Debug, Default)]
pub struct LinkBuffers {
    step: StepBuffers,
    dirs: Vec<LocalDirection>,
    obs_first: Vec<Observation>,
}

impl LinkBuffers {
    /// Creates an empty buffer set (vectors grow to the ring size on first
    /// use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable scratch for the zero-alloc frame exchange
/// ([`RingLink::exchange_frames_with`]): the underlying [`LinkBuffers`]
/// plus per-exchange payload and accumulator buffers.
#[derive(Clone, Debug, Default)]
pub struct FrameBuffers {
    link: LinkBuffers,
    payload: Vec<bool>,
    rx: Vec<NeighborBits>,
    right_present: Vec<bool>,
    left_present: Vec<bool>,
    right_value: Vec<u64>,
    left_value: Vec<u64>,
}

impl FrameBuffers {
    /// Creates an empty buffer set (vectors grow to the ring size on first
    /// use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Bits received from the two neighbours in one exchange slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeighborBits {
    /// Bit sent by the neighbour on the agent's right.
    pub from_right: bool,
    /// Bit sent by the neighbour on the agent's left.
    pub from_left: bool,
}

/// Optional values received from the two neighbours in one frame exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeighborFrames {
    /// Value sent by the neighbour on the agent's right, if it had one.
    pub from_right: Option<u64>,
    /// Value sent by the neighbour on the agent's left, if it had one.
    pub from_left: Option<u64>,
}

/// A communication link between ring neighbours, built purely out of
/// collisions.
#[derive(Clone, Debug)]
pub struct RingLink {
    infos: Vec<NeighborInfo>,
}

impl RingLink {
    /// Establishes the link by running neighbour discovery. Returns the link
    /// together with the number of rounds spent.
    ///
    /// # Errors
    ///
    /// Propagates errors from neighbour discovery.
    pub fn establish(net: &mut Network<'_>) -> Result<(Self, u64), ProtocolError> {
        let map = discover_neighbors(net)?;
        let rounds = map.rounds();
        Ok((Self::from_neighbor_map(&map), rounds))
    }

    /// Builds a link from an existing neighbour map.
    pub fn from_neighbor_map(map: &NeighborMap) -> Self {
        RingLink {
            infos: map.infos().to_vec(),
        }
    }

    /// Number of agents on the link.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the link is empty (never true for valid rings).
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Per-agent neighbour information the link was built from.
    pub fn infos(&self) -> &[NeighborInfo] {
        &self.infos
    }

    /// Exchanges one bit with both neighbours (Proposition 31). `bits[i]` is
    /// the bit agent `i` transmits; the result contains the bits each agent
    /// received. Costs 4 rounds (each of the two information rounds is
    /// followed by its reversal, so both start from — and the exchange ends
    /// at — the same positions, which is what makes the gap comparison in
    /// the decoder valid).
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; returns [`ProtocolError::LengthMismatch`]
    /// if `bits` has the wrong length.
    pub fn exchange_bits(
        &self,
        net: &mut Network<'_>,
        bits: &[bool],
    ) -> Result<Vec<NeighborBits>, ProtocolError> {
        let mut bufs = LinkBuffers::new();
        let mut out = Vec::with_capacity(self.infos.len());
        self.exchange_bits_with(net, bits, &mut bufs, &mut out)?;
        Ok(out)
    }

    /// Zero-alloc variant of [`RingLink::exchange_bits`]: the four rounds
    /// execute through caller-owned buffers and the received bits are
    /// written into `out` (cleared first). After the buffers reach the ring
    /// size, no exchange allocates.
    ///
    /// # Errors
    ///
    /// Same as [`RingLink::exchange_bits`].
    pub fn exchange_bits_with(
        &self,
        net: &mut Network<'_>,
        bits: &[bool],
        bufs: &mut LinkBuffers,
        out: &mut Vec<NeighborBits>,
    ) -> Result<(), ProtocolError> {
        let n = self.infos.len();
        if bits.len() != n {
            return Err(ProtocolError::LengthMismatch {
                what: "bits",
                got: bits.len(),
                expected: n,
            });
        }
        // Round A: bit 1 ↦ right, bit 0 ↦ left; round B: the opposite
        // encoding. Each is undone immediately so that both information
        // rounds see the same neighbour gaps.
        bufs.dirs.clear();
        bufs.dirs
            .extend(bits.iter().map(|&b| LocalDirection::from_bit(b)));
        net.step_into(&bufs.dirs, &mut bufs.step)?;
        bufs.obs_first.clear();
        bufs.obs_first.extend_from_slice(bufs.step.observations());
        net.step_reversed_into(&bufs.dirs, &mut bufs.step)?;
        for d in bufs.dirs.iter_mut() {
            *d = d.opposite();
        }
        net.step_into(&bufs.dirs, &mut bufs.step)?;

        // Decode from the two information rounds (round B's observations
        // are still live in the step buffers; the closing reversal below
        // does not contribute information).
        out.clear();
        for (agent, &bit) in bits.iter().enumerate() {
            let info = self.infos[agent];
            let obs_a = &bufs.obs_first[agent];
            let obs_b = &bufs.step.observations()[agent];
            // Observations of the rounds in which this agent moved right and
            // left respectively.
            let (obs_when_right, obs_when_left): (&Observation, &Observation) =
                if bit { (obs_a, obs_b) } else { (obs_b, obs_a) };
            let right_round_is_a = bit;
            let left_round_is_a = !bit;

            let right_approached = obs_when_right.coll == Some(info.right_gap.half());
            let left_approached = obs_when_left.coll == Some(info.left_gap.half());

            // The right neighbour approached iff it physically moved towards
            // this agent, i.e. (same chirality ⇒ it moved left, opposite ⇒ it
            // moved right). In round A it moved right iff its bit is 1.
            let right_moved_right_in_that_round = if info.right_same_chirality {
                !right_approached
            } else {
                right_approached
            };
            let from_right = if right_round_is_a {
                right_moved_right_in_that_round
            } else {
                !right_moved_right_in_that_round
            };

            // The left neighbour approached iff it physically moved towards
            // this agent, i.e. (same chirality ⇒ it moved right, opposite ⇒
            // it moved left).
            let left_moved_right_in_that_round = if info.left_same_chirality {
                left_approached
            } else {
                !left_approached
            };
            let from_left = if left_round_is_a {
                left_moved_right_in_that_round
            } else {
                !left_moved_right_in_that_round
            };

            out.push(NeighborBits {
                from_right,
                from_left,
            });
        }
        net.step_reversed_into(&bufs.dirs, &mut bufs.step)?;
        Ok(())
    }

    /// Exchanges a fixed-width optional value with both neighbours: one
    /// presence bit followed by `bits` payload bits (most significant
    /// first). Costs `4 · (bits + 1)` rounds and restores all positions.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; returns [`ProtocolError::LengthMismatch`]
    /// if `values` has the wrong length.
    pub fn exchange_frames(
        &self,
        net: &mut Network<'_>,
        values: &[Option<u64>],
        bits: u32,
    ) -> Result<Vec<NeighborFrames>, ProtocolError> {
        let mut bufs = FrameBuffers::new();
        let mut out = Vec::with_capacity(self.infos.len());
        self.exchange_frames_with(net, values, bits, &mut bufs, &mut out)?;
        Ok(out)
    }

    /// Zero-alloc variant of [`RingLink::exchange_frames`]: all
    /// `4 · (bits + 1)` rounds run through caller-owned buffers and the
    /// received frames are written into `out` (cleared first).
    ///
    /// # Errors
    ///
    /// Same as [`RingLink::exchange_frames`].
    pub fn exchange_frames_with(
        &self,
        net: &mut Network<'_>,
        values: &[Option<u64>],
        bits: u32,
        bufs: &mut FrameBuffers,
        out: &mut Vec<NeighborFrames>,
    ) -> Result<(), ProtocolError> {
        let n = self.infos.len();
        if values.len() != n {
            return Err(ProtocolError::LengthMismatch {
                what: "frame values",
                got: values.len(),
                expected: n,
            });
        }
        // Presence bit.
        bufs.payload.clear();
        bufs.payload.extend(values.iter().map(|v| v.is_some()));
        self.exchange_bits_with(net, &bufs.payload, &mut bufs.link, &mut bufs.rx)?;
        bufs.right_present.clear();
        bufs.left_present.clear();
        for nb in &bufs.rx {
            bufs.right_present.push(nb.from_right);
            bufs.left_present.push(nb.from_left);
        }
        // Payload bits, most significant first.
        bufs.right_value.clear();
        bufs.right_value.resize(n, 0);
        bufs.left_value.clear();
        bufs.left_value.resize(n, 0);
        for bit in (0..bits).rev() {
            bufs.payload.clear();
            bufs.payload.extend(
                values
                    .iter()
                    .map(|v| v.is_some_and(|x| (x >> bit) & 1 == 1)),
            );
            self.exchange_bits_with(net, &bufs.payload, &mut bufs.link, &mut bufs.rx)?;
            for agent in 0..n {
                if bufs.rx[agent].from_right {
                    bufs.right_value[agent] |= 1 << bit;
                }
                if bufs.rx[agent].from_left {
                    bufs.left_value[agent] |= 1 << bit;
                }
            }
        }
        out.clear();
        out.extend((0..n).map(|agent| NeighborFrames {
            from_right: bufs.right_present[agent].then_some(bufs.right_value[agent]),
            from_left: bufs.left_present[agent].then_some(bufs.left_value[agent]),
        }));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use ring_sim::{Chirality, Model, RingConfig};

    /// Ground-truth expectation: what each agent should receive given who its
    /// physical neighbours are and everybody's chirality.
    fn expected_bits(net: &Network<'_>, bits: &[bool]) -> Vec<NeighborBits> {
        let config = net.ground_truth_config();
        let n = net.len();
        (0..n)
            .map(|agent| {
                let (right_neighbor, left_neighbor) = if config.chirality(agent).is_aligned() {
                    ((agent + 1) % n, (agent + n - 1) % n)
                } else {
                    ((agent + n - 1) % n, (agent + 1) % n)
                };
                NeighborBits {
                    from_right: bits[right_neighbor],
                    from_left: bits[left_neighbor],
                }
            })
            .collect()
    }

    #[test]
    fn bit_exchange_delivers_both_neighbours_bits() {
        for seed in 0..8u64 {
            let n = 6 + (seed as usize % 3);
            let config = RingConfig::builder(n)
                .random_positions(seed + 11)
                .random_chirality(seed + 29)
                .build()
                .unwrap();
            let mut net = Network::new(
                &config,
                IdAssignment::random(n, 128, seed + 5),
                Model::Perceptive,
            )
            .unwrap();
            let (link, _) = RingLink::establish(&mut net).unwrap();
            // An arbitrary but varied bit pattern.
            let bits: Vec<bool> = (0..n).map(|i| (i as u64 * 7 + seed) % 3 == 1).collect();
            let received = link.exchange_bits(&mut net, &bits).unwrap();
            assert_eq!(received, expected_bits(&net, &bits), "seed {seed}");
            assert!(net.ground_truth_at_initial_positions());
        }
    }

    #[test]
    fn frame_exchange_delivers_optional_values() {
        let n = 8;
        let config = RingConfig::builder(n)
            .random_positions(3)
            .explicit_chirality(vec![
                Chirality::Aligned,
                Chirality::Reversed,
                Chirality::Aligned,
                Chirality::Aligned,
                Chirality::Reversed,
                Chirality::Reversed,
                Chirality::Aligned,
                Chirality::Reversed,
            ])
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(n, 64, 9), Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        let values: Vec<Option<u64>> = (0..n as u64)
            .map(|i| if i % 3 == 0 { Some(i * 13 + 5) } else { None })
            .collect();
        let rounds_before = net.rounds_used();
        let frames = link.exchange_frames(&mut net, &values, 10).unwrap();
        assert_eq!(net.rounds_used() - rounds_before, 4 * 11);

        let config = net.ground_truth_config();
        for (agent, frame) in frames.iter().enumerate() {
            let (right_neighbor, left_neighbor) = if config.chirality(agent).is_aligned() {
                ((agent + 1) % n, (agent + n - 1) % n)
            } else {
                ((agent + n - 1) % n, (agent + 1) % n)
            };
            assert_eq!(frame.from_right, values[right_neighbor]);
            assert_eq!(frame.from_left, values[left_neighbor]);
        }
    }

    #[test]
    fn wrong_lengths_are_rejected() {
        let config = RingConfig::builder(6).random_positions(1).build().unwrap();
        let mut net =
            Network::new(&config, IdAssignment::consecutive(6), Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        assert!(matches!(
            link.exchange_bits(&mut net, &[true, false]),
            Err(ProtocolError::LengthMismatch { .. })
        ));
        assert!(matches!(
            link.exchange_frames(&mut net, &[None, None], 4),
            Err(ProtocolError::LengthMismatch { .. })
        ));
    }

    /// `ArcLength::half` is what the decoder compares against; make sure the
    /// gap parity invariant that makes it exact really holds in discovery.
    #[test]
    fn observed_gaps_are_even() {
        let config = RingConfig::builder(7).random_positions(4).build().unwrap();
        let mut net =
            Network::new(&config, IdAssignment::consecutive(7), Model::Perceptive).unwrap();
        let (link, _) = RingLink::establish(&mut net).unwrap();
        for info in link.infos() {
            assert_eq!(info.right_gap.ticks() % 2, 0);
            assert_eq!(info.left_gap.ticks() % 2, 0);
            let _ = info.right_gap.half();
        }
    }
}
