//! Neighbour discovery (Algorithm 3 of the paper).
//!
//! Every agent learns, in `O(log N)` rounds,
//!
//! * the distance to its right neighbour and to its left neighbour (in the
//!   agent's **own** frame), and
//! * whether each neighbour shares the agent's sense of direction.
//!
//! The key facts (Proposition 4 specialised to adjacent agents):
//!
//! * when an agent moves towards a neighbour, its first collision is with
//!   that neighbour, at distance **exactly half the gap** if the neighbour
//!   simultaneously moves towards the agent, and **strictly more** (or no
//!   collision at all) otherwise;
//! * two agents whose identifiers differ in bit `i` choose opposite local
//!   directions in the four rounds Algorithm 3 devotes to bit `i`, so if
//!   they have the *same* chirality they approach each other in one of those
//!   rounds; if they have *opposite* chirality they approach in the final
//!   "everybody right" / "everybody left" rounds instead.
//!
//! Taking the minimum of the observed collision distances on each side
//! therefore yields exactly half the gap, and comparing the all-right /
//! all-left collision distances against that minimum reveals the relative
//! chirality.

use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use ring_sim::{ArcLength, LocalDirection};

/// What one agent knows about its two ring neighbours after discovery, in
/// the agent's own frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeighborInfo {
    /// Gap to the neighbour on the agent's right (own clockwise direction).
    pub right_gap: ArcLength,
    /// Gap to the neighbour on the agent's left.
    pub left_gap: ArcLength,
    /// Whether the right neighbour has the same sense of direction.
    pub right_same_chirality: bool,
    /// Whether the left neighbour has the same sense of direction.
    pub left_same_chirality: bool,
}

/// The result of neighbour discovery for the whole ring.
#[derive(Clone, Debug)]
pub struct NeighborMap {
    infos: Vec<NeighborInfo>,
    rounds: u64,
}

impl NeighborMap {
    /// Per-agent neighbour information.
    pub fn infos(&self) -> &[NeighborInfo] {
        &self.infos
    }

    /// Neighbour information of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn info(&self, agent: usize) -> NeighborInfo {
        self.infos[agent]
    }

    /// Rounds consumed by the discovery.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// Algorithm 3: neighbour discovery. Every round is followed by its reversed
/// round, so the agents end exactly where they started.
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::Internal`] if some
/// agent never observed a collision on one of its sides (impossible for
/// `n ≥ 2` distinct identifiers in the perceptive model).
pub fn discover_neighbors(net: &mut Network<'_>) -> Result<NeighborMap, ProtocolError> {
    let n = net.len();
    let start = net.rounds_used();

    let mut min_right: Vec<Option<ArcLength>> = vec![None; n];
    let mut min_left: Vec<Option<ArcLength>> = vec![None; n];
    let mut all_right_coll: Vec<Option<ArcLength>> = vec![None; n];
    let mut all_left_coll: Vec<Option<ArcLength>> = vec![None; n];

    let record = |dirs: &[LocalDirection],
                  obs: &[ring_sim::Observation],
                  min_right: &mut Vec<Option<ArcLength>>,
                  min_left: &mut Vec<Option<ArcLength>>| {
        for agent in 0..dirs.len() {
            let Some(coll) = obs[agent].coll else {
                continue;
            };
            let slot = match dirs[agent] {
                LocalDirection::Right => &mut min_right[agent],
                LocalDirection::Left => &mut min_left[agent],
                LocalDirection::Idle => continue,
            };
            *slot = Some(match *slot {
                Some(prev) => prev.min(coll),
                None => coll,
            });
        }
    };

    // One direction buffer and one step-buffer arena serve every round of
    // the discovery: after they reach the ring size, no round allocates.
    let mut bufs = StepBuffers::new();
    let mut dirs: Vec<LocalDirection> = Vec::with_capacity(n);

    // Bit rounds: for every identifier bit, every bit value and every
    // direction, agents whose bit matches move that way and the others move
    // the opposite way.
    for bit in 0..net.id_bits() {
        for value in [false, true] {
            for dir in [LocalDirection::Right, LocalDirection::Left] {
                dirs.clear();
                dirs.extend((0..n).map(|agent| {
                    if net.id_of(agent).bit(bit) == value {
                        dir
                    } else {
                        dir.opposite()
                    }
                }));
                net.step_into(&dirs, &mut bufs)?;
                record(&dirs, bufs.observations(), &mut min_right, &mut min_left);
                net.step_reversed_into(&dirs, &mut bufs)?;
            }
        }
    }

    // Everybody right, then everybody left: these rounds guarantee an
    // approach between neighbours of opposite chirality and reveal relative
    // chirality on each side.
    dirs.clear();
    dirs.extend(std::iter::repeat_n(LocalDirection::Right, n));
    net.step_into(&dirs, &mut bufs)?;
    for (agent, obs) in bufs.observations().iter().enumerate() {
        all_right_coll[agent] = obs.coll;
    }
    record(&dirs, bufs.observations(), &mut min_right, &mut min_left);
    net.step_reversed_into(&dirs, &mut bufs)?;

    dirs.clear();
    dirs.extend(std::iter::repeat_n(LocalDirection::Left, n));
    net.step_into(&dirs, &mut bufs)?;
    for (agent, obs) in bufs.observations().iter().enumerate() {
        all_left_coll[agent] = obs.coll;
    }
    record(&dirs, bufs.observations(), &mut min_right, &mut min_left);
    net.step_reversed_into(&dirs, &mut bufs)?;

    let mut infos = Vec::with_capacity(n);
    for agent in 0..n {
        let (Some(half_right), Some(half_left)) = (min_right[agent], min_left[agent]) else {
            return Err(ProtocolError::Internal {
                protocol: "neighbor-discovery",
                reason: format!("agent {agent} never collided on one of its sides"),
            });
        };
        let right_gap = ArcLength::from_ticks(half_right.doubled_ticks());
        let left_gap = ArcLength::from_ticks(half_left.doubled_ticks());
        // In the all-right round the agent approaches its right neighbour; a
        // collision at exactly half the gap means the neighbour approached
        // too, i.e. its own "right" points the other way.
        let right_same_chirality = all_right_coll[agent] != Some(half_right);
        let left_same_chirality = all_left_coll[agent] != Some(half_left);
        infos.push(NeighborInfo {
            right_gap,
            left_gap,
            right_same_chirality,
            left_same_chirality,
        });
    }

    Ok(NeighborMap {
        infos,
        rounds: net.rounds_used() - start,
    })
}

/// Ground-truth verification helper used by tests: checks gaps and relative
/// chirality against the hidden configuration.
pub fn verify_neighbor_map(net: &Network<'_>, map: &NeighborMap) -> bool {
    let config = net.ground_truth_config();
    let n = net.len();
    (0..n).all(|agent| {
        let info = map.info(agent);
        // Agent `agent` initially occupies slot `agent`; discovery restores
        // positions, so slots still equal agent indices here.
        let cw_gap = config.gap(agent);
        let acw_gap = config.gap((agent + n - 1) % n);
        let (expected_right, expected_left) = if config.chirality(agent).is_aligned() {
            (cw_gap, acw_gap)
        } else {
            (acw_gap, cw_gap)
        };
        let (right_neighbor, left_neighbor) = if config.chirality(agent).is_aligned() {
            ((agent + 1) % n, (agent + n - 1) % n)
        } else {
            ((agent + n - 1) % n, (agent + 1) % n)
        };
        info.right_gap == expected_right
            && info.left_gap == expected_left
            && info.right_same_chirality
                == (config.chirality(right_neighbor) == config.chirality(agent))
            && info.left_same_chirality
                == (config.chirality(left_neighbor) == config.chirality(agent))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use ring_sim::{Model, RingConfig};

    #[test]
    fn discovery_recovers_gaps_and_chirality_for_random_rings() {
        for seed in 0..6u64 {
            let n = 5 + (seed as usize % 4) * 3;
            let config = RingConfig::builder(n)
                .random_positions(seed * 31 + 1)
                .random_chirality(seed * 17 + 2)
                .build()
                .unwrap();
            let ids = IdAssignment::random(n, 256, seed + 3);
            let mut net = Network::new(&config, ids, Model::Perceptive).unwrap();
            let map = discover_neighbors(&mut net).unwrap();
            assert!(verify_neighbor_map(&net, &map), "seed {seed}");
            assert!(net.ground_truth_at_initial_positions());
            // O(log N): 8 rounds per identifier bit plus 4 closing rounds.
            assert_eq!(map.rounds(), 8 * net.id_bits() as u64 + 4);
        }
    }

    #[test]
    fn discovery_works_when_everybody_shares_chirality() {
        let config = RingConfig::builder(7)
            .random_positions(5)
            .aligned_chirality()
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(7, 64, 6), Model::Perceptive).unwrap();
        let map = discover_neighbors(&mut net).unwrap();
        assert!(verify_neighbor_map(&net, &map));
        assert!(map
            .infos()
            .iter()
            .all(|i| i.right_same_chirality && i.left_same_chirality));
    }
}
