//! The perceptive-model stack (Section V of the paper).
//!
//! In the perceptive model an agent additionally observes `coll()`, the
//! distance to its first collision in a round. This turns collisions into a
//! communication medium:
//!
//! * [`neighbors`] — each agent learns the distance to (and relative
//!   orientation of) both ring neighbours (Algorithm 3);
//! * [`link`] — a 1-bit-per-slot communication layer with both neighbours
//!   (Proposition 31), plus fixed-width frame exchange;
//! * [`dissemination`] — flooding of values over bounded ring distances
//!   (Corollaries 33 and 34);
//! * [`nmove`] — the `NMoveS` nontrivial-move algorithm: local leaders at
//!   exponentially growing radii plus selective families (Algorithm 4);
//! * [`ringdist`] — `RingDist`: every agent learns its ring distance from
//!   the leader in `O(√n log N)` rounds (Algorithm 5);
//! * [`distances`] — `Distances`: location discovery in `n/2 + o(n)` rounds
//!   via `Convolution` and `Pivot` rounds (Algorithm 6).

pub mod dissemination;
pub mod distances;
pub mod link;
pub mod neighbors;
pub mod nmove;
pub mod ringdist;
