//! Agent identifiers.
//!
//! Deterministic symmetry breaking requires unique identifiers: every agent
//! carries an [`AgentId`] drawn from the universe `[1, N]` and knows `N`,
//! but does not know which other identifiers are present (Section I.B of the
//! paper).

use crate::error::ProtocolError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A unique agent identifier in `[1, N]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(u64);

impl AgentId {
    /// Creates an identifier.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0` (identifiers are 1-based).
    pub fn new(value: u64) -> Self {
        assert!(value > 0, "agent identifiers are 1-based");
        AgentId(value)
    }

    /// The raw value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The `bit`-th bit of the identifier (0-indexed from the least
    /// significant bit), as used by the binary-search leader elections.
    pub fn bit(self, bit: u32) -> bool {
        (self.0 >> bit) & 1 == 1
    }
}

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AgentId({})", self.0)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The assignment of identifiers to the agents of a ring, together with the
/// size `N` of the identifier universe.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdAssignment {
    universe: u64,
    ids: Vec<AgentId>,
}

impl IdAssignment {
    /// Wraps an explicit assignment.
    ///
    /// # Errors
    ///
    /// Returns an error if identifiers are not distinct or exceed the
    /// universe.
    pub fn new(universe: u64, ids: Vec<AgentId>) -> Result<Self, ProtocolError> {
        let mut seen = BTreeSet::new();
        for id in &ids {
            if id.value() > universe {
                return Err(ProtocolError::InvalidIds {
                    reason: format!("identifier {id} exceeds the universe {universe}"),
                });
            }
            if !seen.insert(id.value()) {
                return Err(ProtocolError::InvalidIds {
                    reason: format!("identifier {id} assigned twice"),
                });
            }
        }
        Ok(IdAssignment { universe, ids })
    }

    /// Assigns the identifiers `1..=n` in agent order — the simplest valid
    /// assignment, with `N = n`.
    pub fn consecutive(n: usize) -> Self {
        IdAssignment {
            universe: n as u64,
            ids: (1..=n as u64).map(AgentId::new).collect(),
        }
    }

    /// Draws `n` distinct identifiers uniformly from `[1, universe]`
    /// (reproducibly) and assigns them in a random order.
    ///
    /// # Panics
    ///
    /// Panics if `universe < n as u64`.
    pub fn random(n: usize, universe: u64, seed: u64) -> Self {
        assert!(universe >= n as u64, "universe too small for {n} agents");
        let mut rng = StdRng::seed_from_u64(seed);
        // Sample distinct values by shuffling a range when dense, or by
        // rejection sampling when sparse.
        let values: Vec<u64> = if universe <= 4 * n as u64 {
            let mut all: Vec<u64> = (1..=universe).collect();
            all.shuffle(&mut rng);
            all.truncate(n);
            all
        } else {
            use rand::Rng;
            let mut set = BTreeSet::new();
            while set.len() < n {
                set.insert(rng.gen_range(1..=universe));
            }
            let mut v: Vec<u64> = set.into_iter().collect();
            v.shuffle(&mut rng);
            v
        };
        IdAssignment {
            universe,
            ids: values.into_iter().map(AgentId::new).collect(),
        }
    }

    /// The identifier universe size `N`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Identifier of agent `agent`.
    ///
    /// # Panics
    ///
    /// Panics if `agent >= n`.
    pub fn id(&self, agent: usize) -> AgentId {
        self.ids[agent]
    }

    /// All identifiers in agent order.
    pub fn ids(&self) -> &[AgentId] {
        &self.ids
    }

    /// Number of bits needed to address every identifier in the universe.
    pub fn id_bits(&self) -> u32 {
        u64::BITS - self.universe.leading_zeros()
    }

    /// The agent index carrying the maximum identifier (ground truth helper
    /// for tests; agents themselves never see this).
    pub fn max_id_agent(&self) -> usize {
        self.ids
            .iter()
            .enumerate()
            .max_by_key(|(_, id)| id.value())
            .map(|(i, _)| i)
            .expect("nonempty assignment")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_assignment() {
        let a = IdAssignment::consecutive(5);
        assert_eq!(a.universe(), 5);
        assert_eq!(a.id(0).value(), 1);
        assert_eq!(a.id(4).value(), 5);
        assert_eq!(a.id_bits(), 3);
        assert_eq!(a.max_id_agent(), 4);
    }

    #[test]
    fn random_assignments_are_distinct_and_reproducible() {
        let a = IdAssignment::random(64, 1 << 16, 7);
        let b = IdAssignment::random(64, 1 << 16, 7);
        assert_eq!(a, b);
        let mut seen = BTreeSet::new();
        for id in a.ids() {
            assert!(id.value() >= 1 && id.value() <= 1 << 16);
            assert!(seen.insert(id.value()));
        }
        // Dense sampling path.
        let c = IdAssignment::random(16, 20, 9);
        assert_eq!(c.len(), 16);
        let values: BTreeSet<u64> = c.ids().iter().map(|i| i.value()).collect();
        assert_eq!(values.len(), 16);
    }

    #[test]
    fn invalid_assignments_are_rejected() {
        let dup = IdAssignment::new(10, vec![AgentId::new(3), AgentId::new(3)]);
        assert!(matches!(dup, Err(ProtocolError::InvalidIds { .. })));
        let big = IdAssignment::new(10, vec![AgentId::new(11)]);
        assert!(matches!(big, Err(ProtocolError::InvalidIds { .. })));
    }

    #[test]
    fn id_bits() {
        assert!(AgentId::new(5).bit(0));
        assert!(!AgentId::new(5).bit(1));
        assert!(AgentId::new(5).bit(2));
        assert!(!AgentId::new(5).bit(10));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_id_panics() {
        let _ = AgentId::new(0);
    }
}
