//! Deterministic fault injection.
//!
//! A [`FaultPlan`] decides, for every `(round, agent)` pair, whether that
//! agent's chosen move is *suppressed* — physically replaced by an idle
//! round before it reaches the substrate. All four fault kinds of the layer
//! reduce to this one primitive:
//!
//! * **message/link drop** — the agent's direction is lost this round with
//!   a configurable per-mille probability;
//! * **crash-stop stations** — a fixed set of agents stops moving forever
//!   from an agent-specific crash round on;
//! * **dynamic churn** — a fixed set of agents toggles between active and
//!   dormant from round to round (joining and leaving the computation);
//! * **adversarial activation** — a rotating window of agents is denied
//!   activation each round, the worst-case round-robin scheduler.
//!
//! Every decision is drawn from a splitmix64 stream derived from the case
//! seed and the fault parameters, so a fault sequence is a pure function of
//! `(seed, n, fault_params)`: replaying a case on any worker of a sharded
//! sweep produces bit-identical faults, which keeps merged faulty sweeps
//! byte-identical at any `--jobs` and any `--shards`.
//!
//! Faults are injected by [`Network`](crate::exec::Network) *after* the
//! model's idle check: a suppressed move is a physical failure, not a
//! protocol choice, so it is legal even in models that forbid idling.

use ring_combinat::shared::splitmix64;
use serde::{Deserialize, Serialize};

/// Domain-separation constants for the per-kind splitmix64 streams.
const STREAM_BASE: u64 = 0xfa17_ca5e_0000_0001;
const STREAM_DROP: u64 = 0xfa17_ca5e_0000_0002;
const STREAM_CRASH_SET: u64 = 0xfa17_ca5e_0000_0003;
const STREAM_CRASH_ROUND: u64 = 0xfa17_ca5e_0000_0004;
const STREAM_CHURN_SET: u64 = 0xfa17_ca5e_0000_0005;
const STREAM_CHURN_TICK: u64 = 0xfa17_ca5e_0000_0006;

/// Crashes land within the first this-many rounds, early enough to hit
/// every protocol phase.
const CRASH_HORIZON: u64 = 48;

/// The fault configuration of a run — the public, fingerprintable knobs.
///
/// All fields are integers so the parameters thread losslessly through
/// spec fingerprints, worker argv and `manifest.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultParams {
    /// Per-round, per-agent message-drop probability in per mille
    /// (`0..=1000`; `1000` suppresses every move).
    pub drop_per_mille: u64,
    /// Number of crash-stop stations (capped at the ring size).
    pub crashes: u64,
    /// Number of churning stations (capped at the ring size).
    pub churn: u64,
    /// Whether the adversarial round-robin activation schedule is in force.
    pub adversarial: bool,
}

impl FaultParams {
    /// Whether the parameters inject any fault at all.
    pub fn any(&self) -> bool {
        self.drop_per_mille > 0 || self.crashes > 0 || self.churn > 0 || self.adversarial
    }

    /// Folds the parameters into a fingerprint accumulator (one splitmix64
    /// round per knob, mirroring `SweepSpec::fingerprint`).
    pub fn fold_fingerprint(&self, mut h: u64) -> u64 {
        h = splitmix64(h ^ self.drop_per_mille);
        h = splitmix64(h ^ self.crashes);
        h = splitmix64(h ^ self.churn);
        h = splitmix64(h ^ self.adversarial as u64);
        h
    }
}

/// A materialised fault schedule for one case: the pure function
/// `(round, agent) → suppressed?`.
///
/// Construction derives everything from `(params, n, seed)`; two plans
/// built from the same triple return identical decisions forever (see the
/// replay property test).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    params: FaultParams,
    n: usize,
    /// Per-kind stream seeds, pre-mixed with the fault parameters.
    drop_seed: u64,
    churn_seed: u64,
    /// Round from which each agent is crashed (`u64::MAX` = never).
    crash_round: Vec<u64>,
    /// Whether each agent is a churning station.
    churning: Vec<bool>,
}

impl FaultPlan {
    /// Builds the fault schedule for a ring of `n` agents under `params`,
    /// drawing all randomness from a splitmix64 stream over `seed`
    /// (typically the sweep's case seed).
    pub fn new(params: FaultParams, n: usize, seed: u64) -> Self {
        let mut base = splitmix64(seed ^ STREAM_BASE);
        base = params.fold_fingerprint(base);
        base = splitmix64(base ^ n as u64);

        let mut crash_round = vec![u64::MAX; n];
        for agent in pick_agents(splitmix64(base ^ STREAM_CRASH_SET), n, params.crashes) {
            crash_round[agent] =
                splitmix64(splitmix64(base ^ STREAM_CRASH_ROUND) ^ agent as u64) % CRASH_HORIZON;
        }
        let mut churning = vec![false; n];
        for agent in pick_agents(splitmix64(base ^ STREAM_CHURN_SET), n, params.churn) {
            churning[agent] = true;
        }

        FaultPlan {
            params,
            n,
            drop_seed: splitmix64(base ^ STREAM_DROP),
            churn_seed: splitmix64(base ^ STREAM_CHURN_TICK),
            crash_round,
            churning,
        }
    }

    /// The parameters the plan was built from.
    pub fn params(&self) -> &FaultParams {
        &self.params
    }

    /// The ring size the plan covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan covers an empty ring.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether the plan can ever suppress a move.
    pub fn any_faults(&self) -> bool {
        self.params.any()
    }

    /// Whether `agent` is crashed at `round` (crash-stop: once crashed,
    /// crashed forever).
    pub fn crashed(&self, round: u64, agent: usize) -> bool {
        self.crash_round[agent] <= round
    }

    /// Whether `agent` is dormant at `round` under churn (dormant stations
    /// have left the computation for the round).
    pub fn dormant(&self, round: u64, agent: usize) -> bool {
        self.churning[agent]
            && splitmix64(self.churn_seed ^ round ^ ((agent as u64) << 32)) & 1 == 1
    }

    /// Whether the adversarial scheduler denies `agent` activation at
    /// `round`: a window of `⌈n/4⌉` stations, rotating one position per
    /// round, is silenced each round.
    pub fn denied(&self, round: u64, agent: usize) -> bool {
        if !self.params.adversarial || self.n < 2 {
            return false;
        }
        let window = self.n.div_ceil(4);
        (agent + round as usize % self.n) % self.n < window
    }

    /// Whether `agent`'s message (its chosen move) is dropped at `round` by
    /// the lossy link.
    pub fn dropped(&self, round: u64, agent: usize) -> bool {
        if self.params.drop_per_mille == 0 {
            return false;
        }
        splitmix64(self.drop_seed ^ round ^ ((agent as u64) << 32)) % 1000
            < self.params.drop_per_mille
    }

    /// The one decision the executor consumes: whether `agent`'s move is
    /// suppressed (physically forced idle) at `round`, for any reason.
    pub fn suppressed(&self, round: u64, agent: usize) -> bool {
        self.crashed(round, agent)
            || self.dormant(round, agent)
            || self.denied(round, agent)
            || self.dropped(round, agent)
    }
}

/// Picks `min(count, n)` distinct agents by a partial Fisher–Yates shuffle
/// over a splitmix64 stream.
fn pick_agents(seed: u64, n: usize, count: u64) -> Vec<usize> {
    let count = (count as usize).min(n);
    let mut pool: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in 0..count {
        state = splitmix64(state);
        let j = i + (state as usize) % (n - i);
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params_strategy() -> impl Strategy<Value = FaultParams> {
        (0u64..=1000, 0u64..5, 0u64..5, any::<bool>()).prop_map(
            |(drop_per_mille, crashes, churn, adversarial)| FaultParams {
                drop_per_mille,
                crashes,
                churn,
                adversarial,
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The replay guarantee: two plans built from the same
        /// `(params, n, seed)` make identical decisions on every
        /// `(round, agent)` pair — the property the byte-identical
        /// sharded-sweep invariant rests on.
        #[test]
        fn plans_replay_identically(
            params in params_strategy(),
            n in 2usize..24,
            seed in any::<u64>(),
        ) {
            let a = FaultPlan::new(params, n, seed);
            let b = FaultPlan::new(params, n, seed);
            prop_assert_eq!(&a, &b);
            for round in 0..96u64 {
                for agent in 0..n {
                    prop_assert_eq!(a.suppressed(round, agent), b.suppressed(round, agent));
                }
            }
        }

        /// Crash-stop is monotone: once suppressed by a crash, an agent
        /// stays crashed forever, and exactly `min(crashes, n)` agents
        /// crash.
        #[test]
        fn crashes_are_permanent_and_exactly_counted(
            crashes in 0u64..30,
            n in 2usize..24,
            seed in any::<u64>(),
        ) {
            let plan = FaultPlan::new(
                FaultParams { crashes, ..FaultParams::default() },
                n,
                seed,
            );
            let crashed: Vec<usize> =
                (0..n).filter(|&a| plan.crashed(CRASH_HORIZON, a)).collect();
            prop_assert_eq!(crashed.len(), (crashes as usize).min(n));
            for &agent in &crashed {
                let first = (0..CRASH_HORIZON).find(|&r| plan.crashed(r, agent)).unwrap();
                for round in first..first + 64 {
                    prop_assert!(plan.suppressed(round, agent));
                }
            }
        }
    }

    #[test]
    fn empty_params_suppress_nothing() {
        let plan = FaultPlan::new(FaultParams::default(), 8, 42);
        assert!(!plan.any_faults());
        for round in 0..64 {
            for agent in 0..8 {
                assert!(!plan.suppressed(round, agent));
            }
        }
    }

    #[test]
    fn full_drop_suppresses_everything() {
        let plan = FaultPlan::new(
            FaultParams {
                drop_per_mille: 1000,
                ..FaultParams::default()
            },
            6,
            7,
        );
        for round in 0..16 {
            for agent in 0..6 {
                assert!(plan.suppressed(round, agent));
            }
        }
    }

    #[test]
    fn drop_rate_tracks_the_configured_probability() {
        let plan = FaultPlan::new(
            FaultParams {
                drop_per_mille: 250,
                ..FaultParams::default()
            },
            16,
            2015,
        );
        let rounds = 4000u64;
        let drops: u64 = (0..rounds)
            .flat_map(|r| (0..16).map(move |a| (r, a)))
            .filter(|&(r, a)| plan.dropped(r, a))
            .count() as u64;
        let rate = drops as f64 / (rounds * 16) as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn adversarial_window_rotates_and_covers_a_quarter() {
        let n = 8;
        let plan = FaultPlan::new(
            FaultParams {
                adversarial: true,
                ..FaultParams::default()
            },
            n,
            1,
        );
        for round in 0..3 * n as u64 {
            let denied = (0..n).filter(|&a| plan.denied(round, a)).count();
            assert_eq!(denied, n.div_ceil(4));
        }
        // The window moves: round 0 and round 1 deny different sets.
        let set =
            |round: u64| -> Vec<usize> { (0..n).filter(|&a| plan.denied(round, a)).collect() };
        assert_ne!(set(0), set(1));
        // …and wraps after n rounds.
        assert_eq!(set(0), set(n as u64));
    }

    #[test]
    fn churn_toggles_only_churning_stations() {
        let plan = FaultPlan::new(
            FaultParams {
                churn: 2,
                ..FaultParams::default()
            },
            10,
            99,
        );
        let churners: Vec<usize> = (0..10)
            .filter(|&a| (0..256).any(|r| plan.dormant(r, a)))
            .collect();
        assert_eq!(churners.len(), 2);
        // A churning station rejoins: it is active in some round too.
        for &agent in &churners {
            assert!((0..256).any(|r| !plan.dormant(r, agent)));
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let params = FaultParams {
            drop_per_mille: 500,
            ..FaultParams::default()
        };
        let a = FaultPlan::new(params, 12, 1);
        let b = FaultPlan::new(params, 12, 2);
        let differs = (0..64)
            .flat_map(|r| (0..12).map(move |ag| (r, ag)))
            .any(|(r, ag)| a.suppressed(r, ag) != b.suppressed(r, ag));
        assert!(differs);
    }
}
