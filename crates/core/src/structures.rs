//! Shared combinatorial-structure providers.
//!
//! The distinguisher-driven protocols need expensive seeded structures —
//! strong distinguishers for the even-`n` nontrivial move, and (in the
//! experiment harness) materialised distinguishers and selective families.
//! Constructing them is the dominant per-run cost at large `N`, and the
//! constructions are pure functions of `(kind, N, n, seed)`, so a sweep
//! over many configurations should build each one once and share it.
//!
//! [`StructureProvider`] is the seam: every [`Network`](crate::Network)
//! carries one (an `Arc<dyn StructureProvider>`), protocols request
//! structures through it instead of constructing their own, and the
//! provider decides whether to construct afresh ([`FreshStructures`], the
//! default — the behaviour of a standalone protocol run) or to serve a
//! shared memo (the `ring-harness` structure cache). Because the served
//! structures are bit-identical either way, protocol outcomes never depend
//! on the provider.

use ring_combinat::{Distinguisher, SelectiveFamily, SharedStrongDistinguisher};
use std::fmt;
use std::sync::Arc;

/// Why a provider's persistent tier could not serve a structure.
///
/// The infallible [`StructureProvider`] methods absorb these by falling
/// back to construction (a broken disk tier may cost time, never
/// correctness); the `try_*` methods surface them, so maintenance paths —
/// store verification, prebuild tooling — can report a corrupt or
/// unreadable tier instead of silently rebuilding behind it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructureError {
    message: String,
}

impl StructureError {
    /// Wraps a human-readable description of the failure.
    pub fn new(message: impl Into<String>) -> Self {
        StructureError {
            message: message.into(),
        }
    }
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for StructureError {}

/// A source of seeded combinatorial structures.
///
/// Implementations must be deterministic: the returned structure may only
/// depend on the method's parameters (this is what makes sweep results
/// independent of caching, thread count and scheduling order).
///
/// The `try_*` methods are the **fallible load-or-construct path**: a
/// provider backed by a persistent tier (the `ring-harness` structure
/// store) overrides them to report load failures, while the infallible
/// methods — what the protocols call — must always produce the structure,
/// falling back to construction if the tier is broken. The default `try_*`
/// implementations delegate to the infallible methods and never fail.
pub trait StructureProvider: Send + Sync {
    /// A strong `(N, ·)`-distinguisher sequence over `[1, universe]`.
    fn strong_distinguisher(&self, universe: u64, seed: u64) -> Arc<SharedStrongDistinguisher>;

    /// A materialised `(N, n)`-distinguisher (Theorem 27 construction).
    fn distinguisher(&self, universe: u64, n: usize, seed: u64) -> Arc<Distinguisher>;

    /// An `(N, n)`-selective family (Definition 35 construction).
    fn selective_family(&self, universe: u64, n: usize, seed: u64) -> Arc<SelectiveFamily>;

    /// Fallible variant of [`StructureProvider::strong_distinguisher`].
    ///
    /// # Errors
    ///
    /// Providers with a persistent tier report why a load failed.
    fn try_strong_distinguisher(
        &self,
        universe: u64,
        seed: u64,
    ) -> Result<Arc<SharedStrongDistinguisher>, StructureError> {
        Ok(self.strong_distinguisher(universe, seed))
    }

    /// Fallible variant of [`StructureProvider::distinguisher`].
    ///
    /// # Errors
    ///
    /// Providers with a persistent tier report why a load failed.
    fn try_distinguisher(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> Result<Arc<Distinguisher>, StructureError> {
        Ok(self.distinguisher(universe, n, seed))
    }

    /// Fallible variant of [`StructureProvider::selective_family`].
    ///
    /// # Errors
    ///
    /// Providers with a persistent tier report why a load failed.
    fn try_selective_family(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> Result<Arc<SelectiveFamily>, StructureError> {
        Ok(self.selective_family(universe, n, seed))
    }
}

/// A shareable handle to a structure provider.
pub type SharedStructures = Arc<dyn StructureProvider>;

/// The default provider: constructs every structure from scratch on every
/// request, exactly as the protocols did before providers existed.
#[derive(Clone, Copy, Debug, Default)]
pub struct FreshStructures;

impl StructureProvider for FreshStructures {
    fn strong_distinguisher(&self, universe: u64, seed: u64) -> Arc<SharedStrongDistinguisher> {
        Arc::new(SharedStrongDistinguisher::new(universe, seed))
    }

    fn distinguisher(&self, universe: u64, n: usize, seed: u64) -> Arc<Distinguisher> {
        Arc::new(Distinguisher::random(universe, n, seed))
    }

    fn selective_family(&self, universe: u64, n: usize, seed: u64) -> Arc<SelectiveFamily> {
        Arc::new(SelectiveFamily::random(universe, n, seed))
    }
}

/// A fresh (non-caching) provider handle — the default of
/// [`Network::new`](crate::Network::new).
pub fn fresh_structures() -> SharedStructures {
    Arc::new(FreshStructures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_provider_is_deterministic() {
        let p = FreshStructures;
        let a = p.distinguisher(256, 4, 9);
        let b = p.distinguisher(256, 4, 9);
        assert_eq!(*a, *b);
        let s = p.strong_distinguisher(256, 9);
        let t = p.strong_distinguisher(256, 9);
        assert_eq!(*s.set(2), *t.set(2));
    }

    #[test]
    fn default_fallible_path_constructs_infallibly() {
        let p = FreshStructures;
        assert_eq!(
            *p.try_distinguisher(128, 4, 3).unwrap(),
            *p.distinguisher(128, 4, 3)
        );
        assert_eq!(
            *p.try_selective_family(128, 4, 3).unwrap(),
            *p.selective_family(128, 4, 3)
        );
        assert_eq!(
            *p.try_strong_distinguisher(128, 3).unwrap().set(1),
            *p.strong_distinguisher(128, 3).set(1)
        );
        let err = StructureError::new("tier unreadable");
        assert_eq!(err.to_string(), "tier unreadable");
    }

    #[test]
    fn provider_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedStructures>();
        assert_send_sync::<FreshStructures>();
    }
}
