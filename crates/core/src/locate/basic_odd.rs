//! Location discovery in the basic model with odd `n` (Lemma 16): after the
//! leader is elected, every agent but the leader moves logically clockwise
//! each round, giving a rotation of two positions per round. Each round's
//! `dist()` observation is therefore the sum of two consecutive gaps; over
//! one full revolution (exactly `n` rounds, because `gcd(2, n) = 1`) every
//! adjacent pair-sum is observed, and for odd `n` the pair-sum system pins
//! every gap — this is precisely where the even-`n` impossibility of
//! Lemma 5 shows up as a singular system.

use crate::coordination::leader::elect_leader;
use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use crate::knowledge::GapKnowledge;
use crate::locate::{cumulative_dist_logical, AgentView, LocationDiscovery, LocationMethod};
use ring_sim::{ArcLength, LocalDirection, CIRCUMFERENCE};

/// Location discovery in the basic model with odd `n` (also valid, and used
/// as the odd-`n` fallback, in the perceptive model).
///
/// # Errors
///
/// Propagates sub-protocol and substrate errors.
pub fn discover_locations_basic_odd(
    net: &mut Network<'_>,
) -> Result<LocationDiscovery, ProtocolError> {
    let election = elect_leader(net)?;
    discover_locations_basic_odd_with_leader(net, &election)
}

/// The measurement sweep of the basic-model odd-`n` location discovery,
/// starting from an already-elected leader (used for the Table II row).
///
/// The reported round count includes the rounds of the supplied election.
///
/// # Errors
///
/// Propagates sub-protocol and substrate errors.
pub fn discover_locations_basic_odd_with_leader(
    net: &mut Network<'_>,
    election: &crate::coordination::leader::LeaderElection,
) -> Result<LocationDiscovery, ProtocolError> {
    let n = net.len();
    let start = net.rounds_used() - election.rounds();

    let frames = election.frames().to_vec();

    let delta_start: Vec<ArcLength> = (0..n)
        .map(|agent| cumulative_dist_logical(net, &frames, agent))
        .collect();

    // Sweep: everybody but the leader moves logically clockwise; the leader
    // moves logically anticlockwise. Logical rotation index = n − 2 ≡ −2.
    let dirs: Vec<LocalDirection> = (0..n)
        .map(|agent| {
            let logical = if election.is_leader(agent) {
                LocalDirection::Left
            } else {
                LocalDirection::Right
            };
            frames[agent].to_physical(logical)
        })
        .collect();

    // Per agent: pair-sum equations indexed relative to the agent's own
    // measurement-start position; `offset` tracks how many positions the
    // agent has moved (logically anticlockwise) so far.
    let mut knowledge: Vec<GapKnowledge> = (0..n).map(|_| GapKnowledge::new(n)).collect();
    let mut travelled: Vec<u64> = vec![0; n];
    let mut steps: Vec<usize> = vec![0; n];
    let round_budget = 4 * n as u64 + 16;
    // The sweep repeats one fixed direction assignment through a reusable
    // buffer set (no per-round allocation), folding each round's
    // observations into every agent's pair-sum system until all agents are
    // back at their start.
    let mut bufs = StepBuffers::new();
    let mut finished = false;
    for _ in 0..round_budget {
        net.step_into(&dirs, &mut bufs)?;
        let mut all_back = true;
        for agent in 0..n {
            let logical = frames[agent].observation_to_logical(bufs.observations()[agent]);
            // Moving two positions anticlockwise: the traversed arc is the
            // complement of the reported clockwise displacement.
            let traversed = if logical.dist.is_zero() {
                0
            } else {
                CIRCUMFERENCE - logical.dist.ticks()
            };
            let t = steps[agent];
            // The two gaps crossed lie at relative indices n−2t−2 and
            // n−2t−1 (modulo n).
            let from = (2 * n - 2 * t - 2) % n;
            let to = (from + 2) % n;
            knowledge[agent]
                .add_cw_arc(from, to, ArcLength::from_ticks(traversed))
                .map_err(|e| ProtocolError::Internal {
                    protocol: "location-discovery-basic-odd",
                    reason: e.to_string(),
                })?;
            steps[agent] += 1;
            travelled[agent] = (travelled[agent] + traversed) % CIRCUMFERENCE;
            if travelled[agent] != 0 {
                all_back = false;
            }
        }
        if all_back {
            finished = true;
            break;
        }
    }
    if !finished {
        return Err(ProtocolError::Internal {
            protocol: "location-discovery-basic-odd",
            reason: "the sweep never returned every agent to its starting position".into(),
        });
    }

    let views = (0..n)
        .map(|agent| {
            let gaps = knowledge[agent]
                .gaps()
                .ok_or_else(|| ProtocolError::Internal {
                    protocol: "location-discovery-basic-odd",
                    reason: format!("agent {agent} finished with incomplete knowledge"),
                })?;
            AgentView::from_measurement(&gaps, delta_start[agent])
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(LocationDiscovery::new(
        views,
        frames,
        net.rounds_used() - start,
        LocationMethod::BasicOdd,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use crate::locate::verify_location_discovery;
    use ring_sim::{Model, RingConfig};

    #[test]
    fn basic_odd_discovery_recovers_all_positions() {
        for &(n, seed) in &[(5usize, 1u64), (7, 2), (9, 3), (13, 4)] {
            let config = RingConfig::builder(n)
                .random_positions(seed * 13 + 1)
                .random_chirality(seed * 17 + 2)
                .build()
                .unwrap();
            let ids = IdAssignment::random(n, 8 * n as u64, seed + 9);
            let mut net = Network::new(&config, ids, Model::Basic).unwrap();
            let discovery = discover_locations_basic_odd(&mut net).unwrap();
            assert!(
                verify_location_discovery(&net, &discovery),
                "n={n} seed={seed}"
            );
            assert!(
                discovery.rounds() <= n as u64 + 10 * net.id_bits() as u64 + 20,
                "n={n}: {} rounds",
                discovery.rounds()
            );
        }
    }

    #[test]
    fn dispatcher_rejects_basic_even_and_routes_basic_odd() {
        use crate::locate::discover_locations;

        let config = RingConfig::builder(8).random_positions(3).build().unwrap();
        let ids = IdAssignment::consecutive(8);
        let mut net = Network::new(&config, ids, Model::Basic).unwrap();
        assert!(matches!(
            discover_locations(&mut net),
            Err(ProtocolError::Unsolvable { .. })
        ));

        let config = RingConfig::builder(7)
            .random_positions(4)
            .random_chirality(5)
            .build()
            .unwrap();
        let ids = IdAssignment::random(7, 64, 6);
        let mut net = Network::new(&config, ids, Model::Basic).unwrap();
        let discovery = discover_locations(&mut net).unwrap();
        assert_eq!(discovery.method(), LocationMethod::BasicOdd);
        assert!(verify_location_discovery(&net, &discovery));
    }
}
