//! Location discovery in the lazy model (Lemma 16): once a leader and a
//! common sense of direction are available, a round in which only the leader
//! moves has rotation index 1, so every agent walks the whole ring one
//! position per round and reads every gap off its own `dist()`
//! observations. The sweep ends — simultaneously for every agent — when the
//! accumulated distance reaches one full circumference, i.e. after exactly
//! `n` rounds, which also reveals `n` itself.

use crate::coordination::leader::elect_leader;
use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use crate::locate::{cumulative_dist_logical, AgentView, LocationDiscovery, LocationMethod};
use ring_sim::{ArcLength, LocalDirection, CIRCUMFERENCE};

/// Location discovery in the lazy model: leader election, direction
/// agreement (both bundled in [`elect_leader`]) and an `n`-round rotation-1
/// sweep.
///
/// # Errors
///
/// Propagates sub-protocol and substrate errors.
pub fn discover_locations_lazy(net: &mut Network<'_>) -> Result<LocationDiscovery, ProtocolError> {
    let election = elect_leader(net)?;
    discover_locations_lazy_with_leader(net, &election)
}

/// The measurement sweep of the lazy-model location discovery, starting from
/// an already-elected leader (used to reproduce the Table II row, where the
/// leader comes from the cheaper common-sense-of-direction election).
///
/// The reported round count includes the rounds of the supplied election.
///
/// # Errors
///
/// Propagates sub-protocol and substrate errors.
pub fn discover_locations_lazy_with_leader(
    net: &mut Network<'_>,
    election: &crate::coordination::leader::LeaderElection,
) -> Result<LocationDiscovery, ProtocolError> {
    let n = net.len();
    let start = net.rounds_used() - election.rounds();

    let frames = election.frames().to_vec();

    // Logical displacement accumulated so far: needed to convert the
    // measured arrangement back to initial positions.
    let delta_start: Vec<ArcLength> = (0..n)
        .map(|agent| cumulative_dist_logical(net, &frames, agent))
        .collect();

    // The sweep: only the leader moves (logically clockwise); everybody
    // idles. Each agent appends the observed gap until a full circle has
    // been covered.
    let dirs: Vec<LocalDirection> = (0..n)
        .map(|agent| {
            if election.is_leader(agent) {
                frames[agent].to_physical(LocalDirection::Right)
            } else {
                LocalDirection::Idle
            }
        })
        .collect();

    // The sweep is one batched schedule: the same direction assignment every
    // round, each agent folding its observation into its gap list, until
    // every agent has covered exactly one circumference.
    let mut gaps: Vec<Vec<ArcLength>> = vec![Vec::new(); n];
    let mut covered: Vec<u64> = vec![0; n];
    let round_budget = 4 * n as u64 + 16;
    let mut bufs = StepBuffers::new();
    net.run_schedule(
        &mut bufs,
        |round, out| {
            if round >= round_budget {
                return false;
            }
            out.extend_from_slice(&dirs);
            true
        },
        |obs| {
            let mut all_done = true;
            for agent in 0..n {
                if covered[agent] >= CIRCUMFERENCE {
                    continue;
                }
                let logical = frames[agent].observation_to_logical(obs[agent]);
                gaps[agent].push(logical.dist);
                covered[agent] += logical.dist.ticks();
                if covered[agent] < CIRCUMFERENCE {
                    all_done = false;
                }
            }
            all_done
        },
    )?;
    if covered.iter().any(|&c| c != CIRCUMFERENCE) {
        return Err(ProtocolError::Internal {
            protocol: "location-discovery-lazy",
            reason: "the sweep did not cover exactly one circumference".into(),
        });
    }

    let views = (0..n)
        .map(|agent| AgentView::from_measurement(&gaps[agent], delta_start[agent]))
        .collect::<Result<Vec<_>, _>>()?;

    Ok(LocationDiscovery::new(
        views,
        frames,
        net.rounds_used() - start,
        LocationMethod::Lazy,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use crate::locate::verify_location_discovery;
    use ring_sim::{Model, RingConfig};

    #[test]
    fn lazy_discovery_recovers_all_positions() {
        for &(n, seed) in &[(6usize, 1u64), (9, 2), (12, 3)] {
            let config = RingConfig::builder(n)
                .random_positions(seed * 7 + 1)
                .random_chirality(seed * 11 + 2)
                .build()
                .unwrap();
            let ids = IdAssignment::random(n, 4 * n as u64, seed + 5);
            let mut net = Network::new(&config, ids, Model::Lazy).unwrap();
            let discovery = discover_locations_lazy(&mut net).unwrap();
            assert!(
                verify_location_discovery(&net, &discovery),
                "n={n} seed={seed}"
            );
            // n + O(log N) rounds.
            assert!(
                discovery.rounds() <= n as u64 + 10 * net.id_bits() as u64 + 20,
                "n={n}: {} rounds",
                discovery.rounds()
            );
        }
    }

    #[test]
    fn even_lazy_rings_pay_the_distinguisher_price_but_still_succeed() {
        let n = 8;
        let config = RingConfig::builder(n)
            .random_positions(77)
            .alternating_chirality()
            .build()
            .unwrap();
        let ids = IdAssignment::random(n, 256, 9);
        let mut net = Network::new(&config, ids, Model::Lazy).unwrap();
        let discovery = discover_locations_lazy(&mut net).unwrap();
        assert_eq!(discovery.views().len(), n);
        assert!(discovery.views().iter().all(|v| v.len() == n));
    }
}
