//! Location discovery (the paper's central problem).
//!
//! Each agent must determine the **initial** position of every other agent
//! relative to its own initial position. The paper's feasibility/complexity
//! landscape (Lemmas 5, 6, 16 and Theorem 42):
//!
//! | setting | rounds | route |
//! |---------|--------|-------|
//! | basic model, even `n` | impossible (Lemma 5) | — |
//! | basic model, odd `n`  | `n + O(log N)` | leader + rotation-2 sweep |
//! | lazy model, any `n`   | `n + …` (`O(log N)` for odd `n`, `Θ(n log(N/n)/log n)` for even `n`) | leader + rotation-1 sweep |
//! | perceptive model, even `n` | `n/2 + O(√n log² N)` | `RingDist` + `Distances` |
//!
//! A subtlety shared by every route: the coordination phase (leader
//! election, direction agreement) physically rotates the ring before the
//! measurement phase begins, so what the measurement phase determines is the
//! arrangement of the agents' *current* positions. Because every round
//! shifts all agents by the same number of positions and the occupied
//! point-set never changes, each agent can convert back to initial
//! positions using only its own accumulated `dist()` observations; this is
//! what [`AgentView::from_measurement`] does.

pub mod basic_odd;
pub mod lazy;

use crate::error::ProtocolError;
use crate::exec::Network;
use ring_sim::{ArcLength, Frame, LocalDirection, Model, Parity, CIRCUMFERENCE};

/// Which route produced a location-discovery result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocationMethod {
    /// Lazy-model rotation-1 sweep (Lemma 16).
    Lazy,
    /// Basic-model odd-`n` rotation-2 sweep (Lemma 16).
    BasicOdd,
    /// Perceptive-model `Convolution`/`Pivot` schedule (Algorithm 6).
    PerceptiveConvolution,
}

/// One agent's discovered map of the ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AgentView {
    relative: Vec<ArcLength>,
}

impl AgentView {
    /// Builds a view from measurement-phase data.
    ///
    /// * `gaps_at_measure_start[t]` — the clockwise (in the agent's
    ///   *logical* frame) gap between the agents `t` and `t + 1` hops
    ///   logically clockwise from this agent, measured between the positions
    ///   they occupied when the measurement phase started;
    /// * `delta_start` — this agent's logical-clockwise displacement from
    ///   its initial position to its measurement-start position (the sum of
    ///   its `dist()` observations up to that point).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Internal`] if `delta_start` does not
    /// correspond to a whole number of positions, which would indicate
    /// corrupted observations.
    pub fn from_measurement(
        gaps_at_measure_start: &[ArcLength],
        delta_start: ArcLength,
    ) -> Result<Self, ProtocolError> {
        let n = gaps_at_measure_start.len();
        let shift = find_shift(gaps_at_measure_start, delta_start).ok_or_else(|| {
            ProtocolError::Internal {
                protocol: "location-discovery",
                reason: "accumulated displacement does not align with any position".into(),
            }
        })?;
        // relative[j] = Σ_{t=0}^{j-1} gaps[(t − shift) mod n].
        let mut relative = Vec::with_capacity(n);
        let mut acc = 0u64;
        relative.push(ArcLength::ZERO);
        for j in 0..n - 1 {
            let idx = (j + n - shift) % n;
            acc += gaps_at_measure_start[idx].ticks();
            relative.push(ArcLength::from_ticks(acc));
        }
        Ok(AgentView { relative })
    }

    /// Number of agents on the ring according to this view.
    pub fn len(&self) -> usize {
        self.relative.len()
    }

    /// Whether the view is empty (never true for valid rings).
    pub fn is_empty(&self) -> bool {
        self.relative.is_empty()
    }

    /// `relative_positions()[j]` is the clockwise arc — in the agent's
    /// logical frame — from this agent's initial position to the initial
    /// position of the agent `j` hops logically clockwise from it
    /// (`relative_positions()[0] == 0`).
    pub fn relative_positions(&self) -> &[ArcLength] {
        &self.relative
    }
}

/// Finds the number of whole positions `C` such that walking `C` gaps
/// anticlockwise from relative index 0 covers exactly `delta`.
fn find_shift(gaps: &[ArcLength], delta: ArcLength) -> Option<usize> {
    let n = gaps.len();
    let mut acc = 0u64;
    if delta.is_zero() {
        return Some(0);
    }
    for c in 1..=n {
        acc += gaps[(n - c) % n].ticks();
        if acc == delta.ticks() {
            return Some(c % n);
        }
        if acc > delta.ticks() {
            return None;
        }
    }
    None
}

/// The result of a location-discovery protocol.
#[derive(Clone, Debug)]
pub struct LocationDiscovery {
    views: Vec<AgentView>,
    frames: Vec<Frame>,
    rounds: u64,
    method: LocationMethod,
}

impl LocationDiscovery {
    pub(crate) fn new(
        views: Vec<AgentView>,
        frames: Vec<Frame>,
        rounds: u64,
        method: LocationMethod,
    ) -> Self {
        LocationDiscovery {
            views,
            frames,
            rounds,
            method,
        }
    }

    /// The per-agent views.
    pub fn views(&self) -> &[AgentView] {
        &self.views
    }

    /// The logical frames the views are expressed in (one per agent; all
    /// coherent after the coordination phase).
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The view of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn view(&self, agent: usize) -> &AgentView {
        &self.views[agent]
    }

    /// Rounds consumed, including all prerequisite coordination phases.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Which route was used.
    pub fn method(&self) -> LocationMethod {
        self.method
    }
}

/// Solves location discovery with the route appropriate for the model and
/// parity (the "location discovery" column of Table I).
///
/// # Errors
///
/// Returns [`ProtocolError::Unsolvable`] for the basic model with even `n`
/// (Lemma 5) and propagates sub-protocol errors otherwise.
pub fn discover_locations(net: &mut Network<'_>) -> Result<LocationDiscovery, ProtocolError> {
    match (net.model(), net.parity()) {
        (Model::Basic, Parity::Even) => Err(ProtocolError::Unsolvable {
            reason: "location discovery is impossible in the basic model with even n (Lemma 5)",
        }),
        (Model::Basic, Parity::Odd) => basic_odd::discover_locations_basic_odd(net),
        (Model::Lazy, _) => lazy::discover_locations_lazy(net),
        (Model::Perceptive, Parity::Even) => {
            crate::perceptive::distances::discover_locations_perceptive(net)
        }
        // The conference version sketches an odd-n adaptation of the
        // perceptive schedule; we fall back to the (perfectly valid, n+o(n))
        // basic-model route, which Table I also uses for odd n.
        (Model::Perceptive, Parity::Odd) => basic_odd::discover_locations_basic_odd(net),
    }
}

/// Ground-truth verification of a location-discovery result: every agent's
/// reported map must match the hidden initial configuration, interpreted in
/// that agent's logical frame.
pub fn verify_location_discovery(net: &Network<'_>, discovery: &LocationDiscovery) -> bool {
    let config = net.ground_truth_config();
    let n = net.len();
    let frames = discovery.frames();
    if frames.len() != n {
        return false;
    }
    (0..n).all(|agent| {
        let view = discovery.view(agent);
        if view.len() != n {
            return false;
        }
        let logical_cw_is_objective_cw = frames[agent]
            .to_physical(LocalDirection::Right)
            .to_objective(config.chirality(agent))
            == ring_sim::ObjectiveDirection::Clockwise;
        (0..n).all(|j| {
            let target = if logical_cw_is_objective_cw {
                (agent + j) % n
            } else {
                (agent + n - j) % n
            };
            let expected = if logical_cw_is_objective_cw {
                config
                    .position(agent)
                    .cw_distance_to(config.position(target))
            } else {
                config
                    .position(agent)
                    .acw_distance_to(config.position(target))
            };
            view.relative_positions()[j] == expected
        })
    })
}

/// Converts an agent's cumulative own-frame displacement into its logical
/// frame (helper shared by the location-discovery routes).
pub(crate) fn cumulative_dist_logical(
    net: &Network<'_>,
    frames: &[Frame],
    agent: usize,
) -> ArcLength {
    let physical = net.observed_cumulative_dist(agent);
    if frames[agent].is_flipped() && !physical.is_zero() {
        ArcLength::from_ticks(CIRCUMFERENCE - physical.ticks())
    } else {
        physical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arcs(ticks: &[u64]) -> Vec<ArcLength> {
        ticks.iter().copied().map(ArcLength::from_ticks).collect()
    }

    #[test]
    fn view_without_displacement_is_a_prefix_sum() {
        let gaps = arcs(&[10, 20, 30, CIRCUMFERENCE - 60]);
        let view = AgentView::from_measurement(&gaps, ArcLength::ZERO).unwrap();
        assert_eq!(
            view.relative_positions()
                .iter()
                .map(|a| a.ticks())
                .collect::<Vec<_>>(),
            vec![0, 10, 30, 60]
        );
    }

    #[test]
    fn displacement_correction_rotates_the_attribution() {
        // The agent has drifted forward (clockwise) past one position of
        // length 40 = the last gap, so its initial position is one slot back.
        let gaps = arcs(&[10, 20, 30, CIRCUMFERENCE - 60]);
        let delta = ArcLength::from_ticks(CIRCUMFERENCE - 60);
        let view = AgentView::from_measurement(&gaps, delta).unwrap();
        // From the initial position, the gaps in order are the measurement
        // gaps rotated by one: [last, 10, 20, 30].
        assert_eq!(
            view.relative_positions()
                .iter()
                .map(|a| a.ticks())
                .collect::<Vec<_>>(),
            vec![
                0,
                CIRCUMFERENCE - 60,
                CIRCUMFERENCE - 50,
                CIRCUMFERENCE - 30
            ]
        );
    }

    #[test]
    fn misaligned_displacement_is_rejected() {
        let gaps = arcs(&[10, 20, 30, CIRCUMFERENCE - 60]);
        let err = AgentView::from_measurement(&gaps, ArcLength::from_ticks(5)).unwrap_err();
        assert!(matches!(err, ProtocolError::Internal { .. }));
    }

    #[test]
    fn find_shift_covers_all_positions() {
        let gaps = arcs(&[100, 200, 300, CIRCUMFERENCE - 600]);
        assert_eq!(find_shift(&gaps, ArcLength::ZERO), Some(0));
        assert_eq!(
            find_shift(&gaps, ArcLength::from_ticks(CIRCUMFERENCE - 600)),
            Some(1)
        );
        assert_eq!(
            find_shift(&gaps, ArcLength::from_ticks(CIRCUMFERENCE - 300)),
            Some(2)
        );
        assert_eq!(
            find_shift(&gaps, ArcLength::from_ticks(CIRCUMFERENCE - 100)),
            Some(3)
        );
        assert_eq!(find_shift(&gaps, ArcLength::from_ticks(17)), None);
    }
}
