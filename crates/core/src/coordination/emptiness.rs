//! Emptiness testing (Lemma 12 of the paper).
//!
//! Given a publicly known predicate `B ⊆ [N]` on identifiers and a common
//! sense of direction, the agents decide whether any agent of the network
//! carries an identifier in `B`. An agent whose own identifier is in `B`
//! knows the answer trivially; the interesting part is letting everybody
//! else observe it physically:
//!
//! * **lazy model** — members of `B` move (logically) right while everybody
//!   else idles; the ring rotates iff some member exists: 1 round;
//! * **perceptive model** — members move right, non-members left; either the
//!   ring rotates or (when exactly `n/2` members exist) everybody collides:
//!   1 round;
//! * **basic model, odd `n`** — members right, non-members left; an exact
//!   `n/2` split is impossible, so rotation occurs iff members exist:
//!   1 round;
//! * **basic model, even `n`** — the `n/2` split is indistinguishable from
//!   emptiness in a single round, so the members are additionally split by
//!   each identifier bit; some split must be unbalanced unless there is at
//!   most one member, which cannot hide an `n/2`-sized membership for
//!   `n > 4`: `1 + ⌈log₂ N⌉` rounds.

use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use crate::ids::AgentId;
use ring_sim::{Frame, LocalDirection, Model, Parity};

/// Outcome of an emptiness test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmptinessOutcome {
    /// Whether some agent of the network has an identifier in `B`.
    pub nonempty: bool,
    /// Rounds consumed by the test.
    pub rounds: u64,
}

/// Reusable buffers for emptiness tests. Callers that run many tests back
/// to back — Lemma 13's per-bit binary search in particular — thread one
/// scratch through [`test_emptiness_with`] so no test allocates after the
/// buffers reach the ring size.
#[derive(Clone, Debug, Default)]
pub struct EmptinessScratch {
    membership: Vec<bool>,
    sub: Vec<bool>,
    observed_motion: Vec<bool>,
    dirs: Vec<LocalDirection>,
    step: StepBuffers,
}

impl EmptinessScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Tests whether any agent's identifier satisfies `in_b`, assuming the
/// supplied frames realise a common sense of direction.
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::LengthMismatch`] if
/// the frame vector has the wrong length.
pub fn test_emptiness(
    net: &mut Network<'_>,
    frames: &[Frame],
    in_b: &dyn Fn(AgentId) -> bool,
) -> Result<EmptinessOutcome, ProtocolError> {
    test_emptiness_with(net, frames, in_b, &mut EmptinessScratch::new())
}

/// [`test_emptiness`] through caller-owned buffers (the zero-alloc
/// variant; rounds execute via [`Network::step_into`]).
///
/// # Errors
///
/// Same as [`test_emptiness`].
pub fn test_emptiness_with(
    net: &mut Network<'_>,
    frames: &[Frame],
    in_b: &dyn Fn(AgentId) -> bool,
    scratch: &mut EmptinessScratch,
) -> Result<EmptinessOutcome, ProtocolError> {
    let n = net.len();
    if frames.len() != n {
        return Err(ProtocolError::LengthMismatch {
            what: "frames",
            got: frames.len(),
            expected: n,
        });
    }
    let start = net.rounds_used();
    let EmptinessScratch {
        membership,
        sub,
        observed_motion,
        dirs,
        step,
    } = scratch;
    membership.clear();
    membership.extend((0..n).map(|agent| in_b(net.id_of(agent))));

    let nonempty = match (net.model(), net.parity()) {
        (Model::Lazy, _) => {
            dirs.clear();
            dirs.extend(membership.iter().zip(frames).map(|(&member, frame)| {
                if member {
                    frame.to_physical(LocalDirection::Right)
                } else {
                    LocalDirection::Idle
                }
            }));
            net.step_into(dirs, step)?;
            let obs = step.observations();
            decide(membership, |agent| !obs[agent].dist.is_zero())
        }
        (Model::Perceptive, _) => {
            member_split_into(membership, frames, dirs);
            net.step_into(dirs, step)?;
            let obs = step.observations();
            decide(membership, |agent| {
                !obs[agent].dist.is_zero() || obs[agent].coll.is_some()
            })
        }
        (Model::Basic, Parity::Odd) => {
            member_split_into(membership, frames, dirs);
            net.step_into(dirs, step)?;
            let obs = step.observations();
            decide(membership, |agent| !obs[agent].dist.is_zero())
        }
        (Model::Basic, Parity::Even) => {
            observed_motion.clear();
            observed_motion.resize(n, false);
            // Round 0: the member set itself.
            run_split(net, frames, membership, observed_motion, dirs, step)?;
            // Rounds 1..: members split by each identifier bit.
            for bit in 0..net.id_bits() {
                sub.clear();
                sub.extend((0..n).map(|agent| membership[agent] && net.id_of(agent).bit(bit)));
                run_split(net, frames, sub, observed_motion, dirs, step)?;
            }
            decide(membership, |agent| observed_motion[agent])
        }
    };

    Ok(EmptinessOutcome {
        nonempty,
        rounds: net.rounds_used() - start,
    })
}

/// Fills `dirs` for a round in which members move logically right and
/// non-members logically left.
fn member_split_into(membership: &[bool], frames: &[Frame], dirs: &mut Vec<LocalDirection>) {
    dirs.clear();
    dirs.extend(membership.iter().zip(frames).map(|(&member, frame)| {
        frame.to_physical(if member {
            LocalDirection::Right
        } else {
            LocalDirection::Left
        })
    }));
}

fn run_split(
    net: &mut Network<'_>,
    frames: &[Frame],
    membership: &[bool],
    observed_motion: &mut [bool],
    dirs: &mut Vec<LocalDirection>,
    step: &mut StepBuffers,
) -> Result<(), ProtocolError> {
    member_split_into(membership, frames, dirs);
    net.step_into(dirs, step)?;
    for (flag, o) in observed_motion.iter_mut().zip(step.observations()) {
        *flag |= !o.dist.is_zero();
    }
    Ok(())
}

/// Combines the per-agent verdicts: members know the answer, everyone else
/// relies on having observed motion. The debug assertion documents that all
/// agents reach the same conclusion.
fn decide(membership: &[bool], saw_evidence: impl Fn(usize) -> bool) -> bool {
    let verdict = membership[0] || saw_evidence(0);
    debug_assert!(
        (1..membership.len()).all(|agent| (membership[agent] || saw_evidence(agent)) == verdict),
        "agents disagree on emptiness"
    );
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use ring_sim::{Chirality, Model, RingConfig};

    fn run(model: Model, n: usize, threshold: u64) -> EmptinessOutcome {
        let config = RingConfig::builder(n)
            .random_positions(3)
            .aligned_chirality()
            .build()
            .unwrap();
        let mut net = Network::new(&config, IdAssignment::consecutive(n), model).unwrap();
        let frames = vec![Frame::identity(); n];
        test_emptiness(&mut net, &frames, &|id| id.value() > threshold).unwrap()
    }

    #[test]
    fn lazy_model_takes_one_round() {
        let out = run(Model::Lazy, 8, 100);
        assert!(!out.nonempty);
        assert_eq!(out.rounds, 1);
        let out = run(Model::Lazy, 8, 4);
        assert!(out.nonempty);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn perceptive_model_detects_the_balanced_split() {
        // Exactly half the agents are members: rotation index 0, but the
        // collisions give the answer away.
        let out = run(Model::Perceptive, 8, 4);
        assert!(out.nonempty);
        assert_eq!(out.rounds, 1);
        assert!(!run(Model::Perceptive, 8, 99).nonempty);
    }

    #[test]
    fn basic_model_odd_takes_one_round() {
        let out = run(Model::Basic, 9, 0);
        assert!(out.nonempty);
        assert_eq!(out.rounds, 1);
        assert!(!run(Model::Basic, 9, 9).nonempty);
    }

    #[test]
    fn basic_model_even_needs_the_bit_splits() {
        // Balanced membership in the basic model: the extra rounds are what
        // detect it.
        let out = run(Model::Basic, 8, 4);
        assert!(out.nonempty);
        assert!(out.rounds > 1);
        let empty = run(Model::Basic, 8, 1000);
        assert!(!empty.nonempty);
    }

    #[test]
    fn works_with_mixed_chirality_given_coherent_frames() {
        let n = 10;
        let chirality: Vec<Chirality> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    Chirality::Reversed
                } else {
                    Chirality::Aligned
                }
            })
            .collect();
        let config = RingConfig::builder(n)
            .random_positions(5)
            .explicit_chirality(chirality.clone())
            .build()
            .unwrap();
        let mut net = Network::new(&config, IdAssignment::consecutive(n), Model::Basic).unwrap();
        // Frames that align every agent's logical right with the objective
        // clockwise direction.
        let frames: Vec<Frame> = chirality
            .iter()
            .map(|c| Frame::new(!c.is_aligned()))
            .collect();
        let out = test_emptiness(&mut net, &frames, &|id| id.value() == 3).unwrap();
        assert!(out.nonempty);
        let out = test_emptiness(&mut net, &frames, &|id| id.value() > 100).unwrap();
        assert!(!out.nonempty);
    }

    #[test]
    fn frame_length_is_validated() {
        let config = RingConfig::builder(6).build().unwrap();
        let mut net = Network::new(&config, IdAssignment::consecutive(6), Model::Basic).unwrap();
        assert!(matches!(
            test_emptiness(&mut net, &[Frame::identity(); 2], &|_| false),
            Err(ProtocolError::LengthMismatch { .. })
        ));
    }
}
