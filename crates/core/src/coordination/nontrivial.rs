//! The nontrivial-move problem (Sections III–V of the paper).
//!
//! A direction assignment is a *nontrivial move* if the rotation index of
//! the induced round lies outside `{0, n/2}`. Producing one is the central
//! symmetry-breaking step: once some asymmetry in the agents' behaviour is
//! physically observable, direction agreement costs O(1) rounds
//! (Algorithm 1) and leader election O(log N) rounds (Algorithm 2).
//!
//! The cost of the nontrivial-move problem depends dramatically on the
//! setting:
//!
//! | setting                       | rounds                        | implementation |
//! |-------------------------------|-------------------------------|----------------|
//! | odd `n`                       | `Θ(log(N/n))`                 | [`nontrivial_move_odd`] |
//! | basic / lazy model, even `n`  | `Θ(n·log(N/n)/log n)`         | [`nontrivial_move_even_distinguisher`] |
//! | perceptive model, even `n`    | `O(√n · log N)`               | [`crate::perceptive::nmove::nmove_s`] |
//! | leader already known          | `O(1)` (Lemma 10)             | [`nontrivial_move_with_leader`] |
//! | common direction, randomized  | `O(log N)` w.h.p. (Lemma 15)  | [`nontrivial_move_common_randomized`] |

use crate::coordination::probe::{probe_move_with, probe_nonzero_with, MoveClass};
use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use ring_sim::{Frame, LocalDirection, Model, Parity};

/// Which strategy produced a nontrivial move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NontrivialStrategy {
    /// Every agent moving its own "right" already induced a nontrivial move.
    AllRight,
    /// Splitting the agents by one bit of their identifier (odd `n`).
    IdBitSplit {
        /// The identifier bit used (counted from the most significant).
        bit: u32,
    },
    /// A set of a strong `(N, n)`-distinguisher (basic/lazy model, even `n`).
    Distinguisher {
        /// Index of the successful set within the strong distinguisher.
        set_index: usize,
    },
    /// The unique leader deviated from the all-right round (Lemma 10).
    LeaderDeviation,
    /// A random subset of the identifier space, executed with a common sense
    /// of direction (Lemma 15).
    RandomizedCommon {
        /// Index of the successful random set.
        set_index: usize,
    },
    /// The perceptive-model `NMoveS` algorithm isolated a single local
    /// leader through a selective family (Algorithm 4).
    SelectiveFamily {
        /// The neighbourhood radius at which the isolation succeeded.
        radius: usize,
    },
}

/// A solved instance of the nontrivial-move problem.
#[derive(Clone, Debug)]
pub struct NontrivialMove {
    directions: Vec<LocalDirection>,
    rounds: u64,
    strategy: NontrivialStrategy,
}

impl NontrivialMove {
    pub(crate) fn new(
        directions: Vec<LocalDirection>,
        rounds: u64,
        strategy: NontrivialStrategy,
    ) -> Self {
        NontrivialMove {
            directions,
            rounds,
            strategy,
        }
    }

    /// The per-agent directions (in each agent's own frame) that induce a
    /// nontrivial move when executed together.
    pub fn directions(&self) -> &[LocalDirection] {
        &self.directions
    }

    /// Rounds spent finding the move.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The strategy that succeeded.
    pub fn strategy(&self) -> NontrivialStrategy {
        self.strategy
    }
}

/// The default public seed [`solve_nontrivial_move`] hands its
/// distinguisher machinery when no per-case seed was installed on the
/// network (see [`Network::with_structure_seed`]). Exported so sweep
/// harnesses can enumerate the structure keys a pipeline run will request —
/// `(StrongDistinguisher, universe, 0, structure_seed)` for every even-`n`
/// case — and prebuild them into a shared store.
pub const STRUCTURE_SEED: u64 = 0x5eed;

/// Solves the nontrivial-move problem with the strategy appropriate for the
/// parity of `n` and the model in force (the routing of Tables I and II).
/// The distinguisher machinery is seeded by the network's structure seed
/// ([`STRUCTURE_SEED`] unless a sweep installed a per-case one).
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::RoundBudgetExceeded`]
/// if a randomized construction fails to break symmetry within a generous
/// budget (which has negligible probability for valid inputs).
pub fn solve_nontrivial_move(net: &mut Network<'_>) -> Result<NontrivialMove, ProtocolError> {
    let seed = net.structure_seed();
    match (net.parity(), net.model()) {
        (Parity::Odd, _) => nontrivial_move_odd(net),
        (Parity::Even, Model::Perceptive) => crate::perceptive::nmove::nmove_s(net, seed),
        (Parity::Even, _) => nontrivial_move_even_distinguisher(net, seed),
    }
}

/// Nontrivial move for odd `n` (Propositions 17 and 19): if the all-right
/// round moves somebody it is already nontrivial (odd `n` has no half turn);
/// otherwise every agent shares the same chirality and the first identifier
/// bit (scanning from the most significant) on which the agents disagree
/// yields a nontrivial split. Because `n` distinct identifiers cannot agree
/// on more than `log₂(N/n)` leading bits, this takes `O(log(N/n))` rounds.
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::Internal`] if no
/// identifier bit splits the agents (impossible for distinct identifiers).
pub fn nontrivial_move_odd(net: &mut Network<'_>) -> Result<NontrivialMove, ProtocolError> {
    let n = net.len();
    let start = net.rounds_used();
    let mut bufs = StepBuffers::new();
    let all_right = vec![LocalDirection::Right; n];
    if probe_nonzero_with(net, &all_right, &mut bufs)? {
        return Ok(NontrivialMove::new(
            all_right,
            net.rounds_used() - start,
            NontrivialStrategy::AllRight,
        ));
    }
    // All agents share one chirality; scan identifier bits from the most
    // significant downwards, refilling one direction buffer per probe.
    let mut dirs = all_right;
    for bit in (0..net.id_bits()).rev() {
        for (agent, dir) in dirs.iter_mut().enumerate() {
            *dir = LocalDirection::from_bit(net.id_of(agent).bit(bit));
        }
        if probe_nonzero_with(net, &dirs, &mut bufs)? {
            return Ok(NontrivialMove::new(
                dirs,
                net.rounds_used() - start,
                NontrivialStrategy::IdBitSplit {
                    bit: net.id_bits() - 1 - bit,
                },
            ));
        }
    }
    Err(ProtocolError::Internal {
        protocol: "nontrivial-move-odd",
        reason: "distinct identifiers must disagree on some bit".into(),
    })
}

/// Nontrivial move in the basic or lazy model with even `n` (Theorem 27):
/// execute the sets of a seeded strong `(N, ·)`-distinguisher until a round
/// is observed to be nontrivial. Requires `Θ(n·log(N/n)/log n)` rounds in
/// the worst case (Corollary 28), and that many in expectation only when the
/// chirality split is perfectly balanced — otherwise the initial all-right
/// round already succeeds.
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::RoundBudgetExceeded`]
/// if no nontrivial move is found within a generous multiple of the
/// theoretical bound.
pub fn nontrivial_move_even_distinguisher(
    net: &mut Network<'_>,
    seed: u64,
) -> Result<NontrivialMove, ProtocolError> {
    let n = net.len();
    let start = net.rounds_used();
    let mut bufs = StepBuffers::new();
    let all_right = vec![LocalDirection::Right; n];
    if probe_move_with(net, &all_right, &mut bufs)? == MoveClass::Nontrivial {
        return Ok(NontrivialMove::new(
            all_right,
            net.rounds_used() - start,
            NontrivialStrategy::AllRight,
        ));
    }
    // The strong distinguisher comes from the network's structure provider,
    // so sweep harnesses can construct it once per (universe, seed) and
    // share it read-only across cases and worker threads.
    let strong = net.structures().strong_distinguisher(net.universe(), seed);
    // The budget is a harness-level safety net, not agent knowledge.
    let budget = 32 * strong.prefix_size_for(n.max(2)) + 256;
    // Identifier values are fixed for the whole schedule; membership tests
    // write into one reusable direction buffer (no per-set clones).
    let id_values: Vec<u64> = (0..n).map(|agent| net.id_of(agent).value()).collect();
    let mut dirs = all_right;
    for set_index in 0..budget {
        let set = strong.set(set_index);
        for (dir, &id) in dirs.iter_mut().zip(&id_values) {
            *dir = LocalDirection::from_bit(set.contains(id));
        }
        if probe_move_with(net, &dirs, &mut bufs)? == MoveClass::Nontrivial {
            return Ok(NontrivialMove::new(
                dirs,
                net.rounds_used() - start,
                NontrivialStrategy::Distinguisher { set_index },
            ));
        }
    }
    Err(ProtocolError::RoundBudgetExceeded {
        protocol: "nontrivial-move-even",
        budget: budget as u64,
    })
}

/// Weak variant of [`nontrivial_move_even_distinguisher`] accepting rotation
/// index `n/2` (one probing round per set). This matches the *weak
/// nontrivial move* problem that Proposition 22 relates to distinguishers,
/// and is used by the experiment harness to measure distinguisher execution
/// lengths in isolation.
///
/// # Errors
///
/// Same as [`nontrivial_move_even_distinguisher`].
pub fn weak_nontrivial_move_even_distinguisher(
    net: &mut Network<'_>,
    seed: u64,
) -> Result<NontrivialMove, ProtocolError> {
    let n = net.len();
    let start = net.rounds_used();
    let mut bufs = StepBuffers::new();
    let all_right = vec![LocalDirection::Right; n];
    if probe_nonzero_with(net, &all_right, &mut bufs)? {
        return Ok(NontrivialMove::new(
            all_right,
            net.rounds_used() - start,
            NontrivialStrategy::AllRight,
        ));
    }
    let strong = net.structures().strong_distinguisher(net.universe(), seed);
    let budget = 32 * strong.prefix_size_for(n.max(2)) + 256;
    let id_values: Vec<u64> = (0..n).map(|agent| net.id_of(agent).value()).collect();
    // The weak variant needs exactly one probing round per set, so the whole
    // family runs as one batched schedule: set k's membership pattern is
    // round k's direction assignment, and the first observably rotating
    // round stops the schedule.
    let hit = net.run_schedule(
        &mut bufs,
        |k, dirs| {
            if k as usize >= budget {
                return false;
            }
            set_directions(&strong.set(k as usize), &id_values, dirs);
            true
        },
        |obs| {
            let nonzero = !obs[0].dist.is_zero();
            debug_assert!(
                obs.iter().all(|o| o.dist.is_zero() != nonzero),
                "agents disagree on a zero-rotation probe"
            );
            nonzero
        },
    )?;
    match hit {
        Some(k) => {
            let set_index = k as usize;
            let mut dirs = Vec::with_capacity(n);
            set_directions(&strong.set(set_index), &id_values, &mut dirs);
            Ok(NontrivialMove::new(
                dirs,
                net.rounds_used() - start,
                NontrivialStrategy::Distinguisher { set_index },
            ))
        }
        None => Err(ProtocolError::RoundBudgetExceeded {
            protocol: "weak-nontrivial-move-even",
            budget: budget as u64,
        }),
    }
}

/// Appends the direction assignment induced by a distinguisher set: members
/// move their own right, everyone else left (`dirs` is cleared first, so
/// the schedule's fill closure and the winning-round reconstruction share
/// one mapping).
fn set_directions(set: &ring_combinat::IdSet, id_values: &[u64], dirs: &mut Vec<LocalDirection>) {
    dirs.clear();
    dirs.extend(
        id_values
            .iter()
            .map(|&id| LocalDirection::from_bit(set.contains(id))),
    );
}

/// Nontrivial move given an elected leader (Lemma 10): the all-right round
/// and the round in which only the leader deviates have rotation indices
/// differing by 2, so for `n > 4` at least one of them is nontrivial; both
/// are probed in O(1) rounds.
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::Internal`] if
/// neither probe is nontrivial, which is impossible when exactly one agent
/// is flagged as leader and `n > 4`.
pub fn nontrivial_move_with_leader(
    net: &mut Network<'_>,
    is_leader: &[bool],
) -> Result<NontrivialMove, ProtocolError> {
    let n = net.len();
    if is_leader.len() != n {
        return Err(ProtocolError::LengthMismatch {
            what: "leader flags",
            got: is_leader.len(),
            expected: n,
        });
    }
    let start = net.rounds_used();
    let mut bufs = StepBuffers::new();
    let all_right = vec![LocalDirection::Right; n];
    if probe_move_with(net, &all_right, &mut bufs)? == MoveClass::Nontrivial {
        return Ok(NontrivialMove::new(
            all_right,
            net.rounds_used() - start,
            NontrivialStrategy::AllRight,
        ));
    }
    let deviated: Vec<LocalDirection> = (0..n)
        .map(|agent| {
            if is_leader[agent] {
                LocalDirection::Left
            } else {
                LocalDirection::Right
            }
        })
        .collect();
    if probe_move_with(net, &deviated, &mut bufs)? == MoveClass::Nontrivial {
        return Ok(NontrivialMove::new(
            deviated,
            net.rounds_used() - start,
            NontrivialStrategy::LeaderDeviation,
        ));
    }
    Err(ProtocolError::Internal {
        protocol: "nontrivial-move-with-leader",
        reason: "two assignments whose rotation indices differ by 2 were both trivial".into(),
    })
}

/// Randomized nontrivial move with a common sense of direction (Lemma 15):
/// random identifier subsets are executed (members move logically right)
/// until one is observed to be nontrivial. With a shared frame a random set
/// succeeds with constant probability, so `O(log N)` rounds suffice with
/// high probability.
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::RoundBudgetExceeded`]
/// with negligible probability.
pub fn nontrivial_move_common_randomized(
    net: &mut Network<'_>,
    frames: &[Frame],
    seed: u64,
) -> Result<NontrivialMove, ProtocolError> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = net.len();
    if frames.len() != n {
        return Err(ProtocolError::LengthMismatch {
            what: "frames",
            got: frames.len(),
            expected: n,
        });
    }
    let start = net.rounds_used();
    let budget = 64 * (net.id_bits() as usize + 1);
    let mut bufs = StepBuffers::new();
    let mut dirs = vec![LocalDirection::Right; n];
    for set_index in 0..budget {
        // Pseudo-random membership of each identifier, derived from the
        // public seed so that all agents agree on the set.
        for (agent, dir) in dirs.iter_mut().enumerate() {
            let id = net.id_of(agent).value();
            let mut rng = StdRng::seed_from_u64(
                seed ^ (set_index as u64).wrapping_mul(0x9e3779b97f4a7c15)
                    ^ id.wrapping_mul(0xc2b2ae3d27d4eb4f),
            );
            let member: bool = rng.gen();
            let logical = LocalDirection::from_bit(member);
            *dir = frames[agent].to_physical(logical);
        }
        if probe_move_with(net, &dirs, &mut bufs)? == MoveClass::Nontrivial {
            return Ok(NontrivialMove::new(
                dirs,
                net.rounds_used() - start,
                NontrivialStrategy::RandomizedCommon { set_index },
            ));
        }
    }
    Err(ProtocolError::RoundBudgetExceeded {
        protocol: "nontrivial-move-common-randomized",
        budget: budget as u64,
    })
}

/// Ground-truth verification used by tests: re-executes the returned
/// directions and checks that the rotation index is indeed outside
/// `{0, n/2}`.
pub fn verify_nontrivial(net: &mut Network<'_>, nm: &NontrivialMove) -> bool {
    let mut bufs = StepBuffers::new();
    match probe_move_with(net, nm.directions(), &mut bufs) {
        Ok(class) => class == MoveClass::Nontrivial,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::probe::probe_nonzero;
    use crate::ids::IdAssignment;
    use ring_sim::{Model, RingConfig};

    fn mixed_config(n: usize, pos_seed: u64, chir_seed: u64) -> RingConfig {
        RingConfig::builder(n)
            .random_positions(pos_seed)
            .random_chirality(chir_seed)
            .build()
            .unwrap()
    }

    #[test]
    fn odd_ring_with_mixed_chirality_uses_all_right() {
        let config = mixed_config(9, 1, 2);
        let mut net = Network::new(&config, IdAssignment::random(9, 512, 3), Model::Basic).unwrap();
        let nm = nontrivial_move_odd(&mut net).unwrap();
        assert!(verify_nontrivial(&mut net, &nm));
        assert_eq!(nm.strategy(), NontrivialStrategy::AllRight);
        assert_eq!(nm.rounds(), 1);
    }

    #[test]
    fn odd_ring_with_uniform_chirality_uses_an_id_bit() {
        let config = RingConfig::builder(7)
            .random_positions(4)
            .aligned_chirality()
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(7, 1 << 12, 5), Model::Basic).unwrap();
        let nm = nontrivial_move_odd(&mut net).unwrap();
        assert!(matches!(
            nm.strategy(),
            NontrivialStrategy::IdBitSplit { .. }
        ));
        assert!(verify_nontrivial(&mut net, &nm));
        // Θ(log(N/n)): with N = 4096 and n = 7 this is at most ~12 rounds.
        assert!(nm.rounds() <= 1 + net.id_bits() as u64);
    }

    #[test]
    fn even_ring_distinguisher_strategy_breaks_balanced_chirality() {
        // Perfectly balanced chirality: the all-right round is trivial and
        // the distinguisher sets must break the tie.
        let config = RingConfig::builder(8)
            .random_positions(6)
            .alternating_chirality()
            .build()
            .unwrap();
        let mut net = Network::new(&config, IdAssignment::random(8, 256, 7), Model::Basic).unwrap();
        let nm = nontrivial_move_even_distinguisher(&mut net, 42).unwrap();
        assert!(matches!(
            nm.strategy(),
            NontrivialStrategy::Distinguisher { .. }
        ));
        assert!(verify_nontrivial(&mut net, &nm));
    }

    #[test]
    fn weak_variant_accepts_half_turns() {
        let config = RingConfig::builder(8)
            .random_positions(6)
            .alternating_chirality()
            .build()
            .unwrap();
        let mut net = Network::new(&config, IdAssignment::random(8, 256, 7), Model::Basic).unwrap();
        let nm = weak_nontrivial_move_even_distinguisher(&mut net, 42).unwrap();
        // At the very least the returned assignment rotates the ring.
        assert!(probe_nonzero(&mut net, nm.directions()).unwrap());
    }

    #[test]
    fn leader_deviation_is_constant_rounds() {
        let config = RingConfig::builder(10)
            .random_positions(8)
            .aligned_chirality()
            .build()
            .unwrap();
        let mut net = Network::new(&config, IdAssignment::consecutive(10), Model::Basic).unwrap();
        let mut leaders = vec![false; 10];
        leaders[4] = true;
        let nm = nontrivial_move_with_leader(&mut net, &leaders).unwrap();
        assert!(nm.rounds() <= 4);
        assert!(verify_nontrivial(&mut net, &nm));
        assert_eq!(nm.strategy(), NontrivialStrategy::LeaderDeviation);
    }

    #[test]
    fn randomized_common_direction_strategy_succeeds() {
        let config = RingConfig::builder(12)
            .random_positions(9)
            .aligned_chirality()
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(12, 1 << 10, 11), Model::Basic).unwrap();
        let frames = vec![Frame::identity(); 12];
        let nm = nontrivial_move_common_randomized(&mut net, &frames, 3).unwrap();
        assert!(verify_nontrivial(&mut net, &nm));
    }

    #[test]
    fn dispatcher_routes_by_parity() {
        let config = mixed_config(11, 21, 22);
        let mut net =
            Network::new(&config, IdAssignment::random(11, 256, 23), Model::Basic).unwrap();
        let nm = solve_nontrivial_move(&mut net).unwrap();
        assert!(verify_nontrivial(&mut net, &nm));

        let config = mixed_config(12, 24, 25);
        let mut net =
            Network::new(&config, IdAssignment::random(12, 256, 26), Model::Lazy).unwrap();
        let nm = solve_nontrivial_move(&mut net).unwrap();
        assert!(verify_nontrivial(&mut net, &nm));
    }

    #[test]
    fn leader_flag_length_is_validated() {
        let config = mixed_config(8, 30, 31);
        let mut net = Network::new(&config, IdAssignment::consecutive(8), Model::Basic).unwrap();
        assert!(matches!(
            nontrivial_move_with_leader(&mut net, &[true; 3]),
            Err(ProtocolError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn all_aligned_even_ring_still_finds_a_nontrivial_move() {
        let config = RingConfig::builder(10)
            .random_positions(40)
            .aligned_chirality()
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(10, 1 << 14, 41), Model::Basic).unwrap();
        let nm = nontrivial_move_even_distinguisher(&mut net, 1).unwrap();
        assert!(verify_nontrivial(&mut net, &nm));
    }
}
