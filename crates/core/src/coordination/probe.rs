//! Probing rounds: classifying the rotation index of a direction assignment
//! from purely local observations (Lemma 2 of the paper).
//!
//! * One round suffices to decide whether the rotation index is zero: it is
//!   zero exactly when every agent ends where it started, and since initial
//!   positions are distinct each agent can check this locally
//!   (`dist() == 0`).
//! * Two rounds with the same directions decide additionally whether the
//!   rotation index is `n/2`: the two rounds rotate by `2r`, so every agent
//!   is back at its start after the second round — which it detects locally
//!   because its two `dist()` values add up to exactly one circumference —
//!   if and only if `r ∈ {0, n/2}`.
//!
//! All agents reach the same verdict, because each criterion holds for one
//! agent exactly when it holds for all.

use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use ring_sim::{LocalDirection, CIRCUMFERENCE};

/// Classification of a direction assignment by the rotation index of the
/// round it induces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MoveClass {
    /// Rotation index 0: nobody ends up anywhere new.
    Zero,
    /// Rotation index `n/2` (only possible for even `n`): everybody swaps
    /// with the antipodal agent; still a *trivial* move in the paper's
    /// sense.
    HalfTurn,
    /// Any other rotation index: a *nontrivial move*.
    Nontrivial,
}

impl MoveClass {
    /// Whether the move is nontrivial (rotation index outside `{0, n/2}`).
    pub fn is_nontrivial(self) -> bool {
        matches!(self, MoveClass::Nontrivial)
    }

    /// Whether the move is weakly nontrivial (rotation index nonzero).
    pub fn is_weak_nontrivial(self) -> bool {
        !matches!(self, MoveClass::Zero)
    }
}

/// One-round probe: executes `directions` once and reports whether the
/// rotation index was nonzero. Leaves the agents rotated by that round.
///
/// # Errors
///
/// Propagates substrate and model violations from [`Network::step`].
pub fn probe_nonzero(
    net: &mut Network<'_>,
    directions: &[LocalDirection],
) -> Result<bool, ProtocolError> {
    let mut bufs = StepBuffers::new();
    probe_nonzero_with(net, directions, &mut bufs)
}

/// Zero-alloc variant of [`probe_nonzero`] executing through caller-owned
/// buffers.
///
/// # Errors
///
/// Propagates substrate and model violations from [`Network::step_into`].
pub fn probe_nonzero_with(
    net: &mut Network<'_>,
    directions: &[LocalDirection],
    bufs: &mut StepBuffers,
) -> Result<bool, ProtocolError> {
    net.step_into(directions, bufs)?;
    let obs = bufs.observations();
    let verdict = !obs[0].dist.is_zero();
    debug_assert!(
        obs.iter().all(|o| o.dist.is_zero() != verdict),
        "agents disagree on a zero-rotation probe"
    );
    Ok(verdict)
}

/// Two-round probe (Lemma 2): executes `directions` once or twice and
/// classifies the induced move. Uses a single round when the rotation index
/// turns out to be zero, two rounds otherwise. Leaves the agents rotated.
///
/// # Errors
///
/// Propagates substrate and model violations from [`Network::step`].
pub fn probe_move(
    net: &mut Network<'_>,
    directions: &[LocalDirection],
) -> Result<MoveClass, ProtocolError> {
    let mut bufs = StepBuffers::new();
    probe_move_with(net, directions, &mut bufs)
}

/// Zero-alloc variant of [`probe_move`] executing through caller-owned
/// buffers. Each agent only needs its own first-round `dist()` to carry
/// into the second round, so the two rounds share the buffers.
///
/// # Errors
///
/// Propagates substrate and model violations from [`Network::step_into`].
pub fn probe_move_with(
    net: &mut Network<'_>,
    directions: &[LocalDirection],
    bufs: &mut StepBuffers,
) -> Result<MoveClass, ProtocolError> {
    net.step_into(directions, bufs)?;
    let first_dist = bufs.observations()[0].dist;
    if first_dist.is_zero() {
        debug_assert!(bufs.observations().iter().all(|o| o.dist.is_zero()));
        return Ok(MoveClass::Zero);
    }
    // Debug builds keep the first round to check cross-agent agreement;
    // release builds classify from agent 0 alone (Lemma 2 guarantees all
    // agents reach the same verdict).
    #[cfg(debug_assertions)]
    let first_all: Vec<_> = bufs.observations().iter().map(|o| o.dist).collect();
    net.step_into(directions, bufs)?;
    let second_dist = bufs.observations()[0].dist;
    let verdict = if first_dist.ticks() + second_dist.ticks() == CIRCUMFERENCE {
        MoveClass::HalfTurn
    } else {
        MoveClass::Nontrivial
    };
    #[cfg(debug_assertions)]
    debug_assert!(first_all
        .iter()
        .zip(bufs.observations())
        .all(|(a, b)| (a.ticks() + b.dist.ticks() == CIRCUMFERENCE)
            == (verdict == MoveClass::HalfTurn)));
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use ring_sim::{Chirality, LocalDirection, Model, RingConfig};

    fn net_with_chirality(n: usize, chirality: Vec<Chirality>) -> RingConfig {
        RingConfig::builder(n)
            .random_positions(77)
            .explicit_chirality(chirality)
            .build()
            .unwrap()
    }

    #[test]
    fn all_aligned_all_right_is_zero() {
        let config = net_with_chirality(6, vec![Chirality::Aligned; 6]);
        let mut net = Network::new(&config, IdAssignment::consecutive(6), Model::Basic).unwrap();
        let class = probe_move(&mut net, &[LocalDirection::Right; 6]).unwrap();
        assert_eq!(class, MoveClass::Zero);
        assert_eq!(net.rounds_used(), 1);
    }

    #[test]
    fn half_and_half_chirality_all_right_is_zero_but_quarter_is_half_turn() {
        // 8 agents, half aligned: all-right gives rotation 0.
        let mut chir = vec![Chirality::Aligned; 8];
        for c in chir.iter_mut().take(4) {
            *c = Chirality::Reversed;
        }
        let config = net_with_chirality(8, chir);
        let mut net = Network::new(&config, IdAssignment::consecutive(8), Model::Basic).unwrap();
        assert_eq!(
            probe_move(&mut net, &[LocalDirection::Right; 8]).unwrap(),
            MoveClass::Zero
        );

        // 8 agents, 6 aligned / 2 reversed: all-right has rotation index 4 =
        // n/2, a half turn.
        let mut chir = vec![Chirality::Aligned; 8];
        chir[0] = Chirality::Reversed;
        chir[5] = Chirality::Reversed;
        let config = net_with_chirality(8, chir);
        let mut net = Network::new(&config, IdAssignment::consecutive(8), Model::Basic).unwrap();
        assert_eq!(
            probe_move(&mut net, &[LocalDirection::Right; 8]).unwrap(),
            MoveClass::HalfTurn
        );
        assert_eq!(net.rounds_used(), 2);
    }

    #[test]
    fn single_deviator_is_nontrivial() {
        let config = net_with_chirality(7, vec![Chirality::Aligned; 7]);
        let mut net = Network::new(&config, IdAssignment::consecutive(7), Model::Basic).unwrap();
        let mut dirs = vec![LocalDirection::Right; 7];
        dirs[3] = LocalDirection::Left;
        assert_eq!(probe_move(&mut net, &dirs).unwrap(), MoveClass::Nontrivial);
        assert!(probe_move(&mut net, &dirs).unwrap().is_nontrivial());
    }

    #[test]
    fn nonzero_probe_matches_ground_truth() {
        let config = RingConfig::builder(9)
            .random_positions(3)
            .random_chirality(4)
            .build()
            .unwrap();
        let mut net = Network::new(&config, IdAssignment::consecutive(9), Model::Lazy).unwrap();
        // A lazy round in which only agent 0 moves: rotation index ±1 ≠ 0.
        let mut dirs = vec![LocalDirection::Idle; 9];
        dirs[0] = LocalDirection::Right;
        assert!(probe_nonzero(&mut net, &dirs).unwrap());
        assert!(!probe_nonzero(&mut net, &[LocalDirection::Idle; 9]).unwrap());
    }

    #[test]
    fn move_class_predicates() {
        assert!(MoveClass::Nontrivial.is_nontrivial());
        assert!(MoveClass::Nontrivial.is_weak_nontrivial());
        assert!(MoveClass::HalfTurn.is_weak_nontrivial());
        assert!(!MoveClass::HalfTurn.is_nontrivial());
        assert!(!MoveClass::Zero.is_weak_nontrivial());
    }
}
