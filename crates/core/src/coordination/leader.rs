//! Leader election (Algorithm 2 and Lemma 13 of the paper).
//!
//! Two routes are provided:
//!
//! * [`elect_leader_with_move`] — Algorithm 2: given a nontrivial move,
//!   agree on a direction (2 rounds) and then binary-search over identifier
//!   bits, each step probing the rotation index of one candidate subset:
//!   `O(log N)` rounds in every model.
//! * [`elect_leader_with_common_direction`] — Lemma 13: when a common sense
//!   of direction is already available (Table II), binary-search for the
//!   maximum identifier using emptiness tests; `O(log N)` rounds in the
//!   lazy/perceptive models and for odd `n`, `O(log² N)` in the basic model
//!   with even `n`.
//!
//! [`elect_leader`] composes the appropriate nontrivial-move algorithm with
//! Algorithm 2, which is the reduction chain of Theorem 7 and the "leader
//! election" column of Table I.

use crate::coordination::diragr::{agree_direction_with_move, DirectionAgreement};
use crate::coordination::emptiness::{test_emptiness_with, EmptinessScratch};
use crate::coordination::nontrivial::{solve_nontrivial_move, NontrivialMove};
use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use ring_sim::{Frame, LocalDirection};

/// The result of a leader election.
#[derive(Clone, Debug)]
pub struct LeaderElection {
    is_leader: Vec<bool>,
    frames: Vec<Frame>,
    rounds: u64,
}

impl LeaderElection {
    pub(crate) fn new(is_leader: Vec<bool>, frames: Vec<Frame>, rounds: u64) -> Self {
        LeaderElection {
            is_leader,
            frames,
            rounds,
        }
    }

    /// Whether `agent` holds the leader status.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn is_leader(&self, agent: usize) -> bool {
        self.is_leader[agent]
    }

    /// Leader flags in agent order.
    pub fn leader_flags(&self) -> &[bool] {
        &self.is_leader
    }

    /// Iterator over the indices of agents holding the leader status
    /// (exactly one for a correct election).
    pub fn leaders(&self) -> impl Iterator<Item = usize> + '_ {
        self.is_leader
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| i)
    }

    /// The common frames established as a by-product of the election.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Rounds consumed, including prerequisite sub-protocols.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// Algorithm 2: leader election from a nontrivial move.
///
/// # Errors
///
/// Propagates substrate errors and direction-agreement failures.
pub fn elect_leader_with_move(
    net: &mut Network<'_>,
    nm: &NontrivialMove,
) -> Result<LeaderElection, ProtocolError> {
    let n = net.len();
    let start = net.rounds_used();

    // Step 1: common sense of direction from the nontrivial move.
    let agreement: DirectionAgreement = agree_direction_with_move(net, nm.directions())?;
    let frames = agreement.frames().to_vec();

    // Step 2: X = agents that moved logically right in the nontrivial move.
    // RI(X) ≠ 0 because the move was nontrivial.
    let mut in_x: Vec<bool> = (0..n)
        .map(|agent| frames[agent].to_logical(nm.directions()[agent]) == LocalDirection::Right)
        .collect();

    // Step 3: binary search over identifier bits, maintaining RI(X) ≠ 0.
    // One buffer set and two reused per-agent vectors serve every round
    // (the zero-alloc `step_into` interface).
    let mut bufs = StepBuffers::new();
    let mut in_x0 = vec![false; n];
    let mut dirs: Vec<LocalDirection> = Vec::with_capacity(n);
    for bit in 0..net.id_bits() {
        for agent in 0..n {
            in_x0[agent] = in_x[agent] && !net.id_of(agent).bit(bit);
        }
        dirs.clear();
        dirs.extend((0..n).map(|agent| {
            frames[agent].to_physical(if in_x0[agent] {
                LocalDirection::Right
            } else {
                LocalDirection::Left
            })
        }));
        net.step_into(&dirs, &mut bufs)?;
        let obs = bufs.observations();
        let nonzero = !obs[0].dist.is_zero();
        debug_assert!(obs.iter().all(|o| o.dist.is_zero() != nonzero));
        for agent in 0..n {
            in_x[agent] = if nonzero {
                in_x0[agent]
            } else {
                in_x[agent] && !in_x0[agent]
            };
        }
    }

    Ok(LeaderElection::new(
        in_x,
        frames,
        net.rounds_used() - start + nm.rounds(),
    ))
}

/// Lemma 13: leader election under a common sense of direction, by binary
/// search for the maximum identifier present in the network, one emptiness
/// test per identifier bit.
///
/// # Errors
///
/// Propagates substrate errors.
pub fn elect_leader_with_common_direction(
    net: &mut Network<'_>,
    frames: &[Frame],
) -> Result<LeaderElection, ProtocolError> {
    let n = net.len();
    if frames.len() != n {
        return Err(ProtocolError::LengthMismatch {
            what: "frames",
            got: frames.len(),
            expected: n,
        });
    }
    let start = net.rounds_used();
    let bits = net.id_bits();
    let mut prefix: u64 = 0;
    // One scratch serves every per-bit emptiness test.
    let mut scratch = EmptinessScratch::new();
    for bit in (0..bits).rev() {
        let candidate_floor = prefix | (1 << bit);
        // B = identifiers matching the chosen prefix above `bit` and having
        // this bit set.
        let outcome = test_emptiness_with(
            net,
            frames,
            &move |id| {
                let v = id.value();
                (v >> (bit + 1)) == (candidate_floor >> (bit + 1)) && (v >> bit) & 1 == 1
            },
            &mut scratch,
        )?;
        if outcome.nonempty {
            prefix = candidate_floor;
        }
    }
    let is_leader: Vec<bool> = (0..n)
        .map(|agent| net.id_of(agent).value() == prefix)
        .collect();
    Ok(LeaderElection::new(
        is_leader,
        frames.to_vec(),
        net.rounds_used() - start,
    ))
}

/// Leader election in the general setting (Table I): obtains a nontrivial
/// move with the strategy appropriate for the model and parity, then runs
/// Algorithm 2.
///
/// # Errors
///
/// Propagates errors from the underlying sub-protocols.
pub fn elect_leader(net: &mut Network<'_>) -> Result<LeaderElection, ProtocolError> {
    let nm = solve_nontrivial_move(net)?;
    elect_leader_with_move(net, &nm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordination::diragr::frames_are_coherent;
    use crate::ids::IdAssignment;
    use ring_sim::{Model, RingConfig};

    fn assert_unique_leader(election: &LeaderElection) {
        let leaders: Vec<usize> = election.leaders().collect();
        assert_eq!(leaders.len(), 1, "expected exactly one leader");
    }

    #[test]
    fn algorithm_2_elects_the_maximum_id_on_odd_rings() {
        let config = RingConfig::builder(9)
            .random_positions(31)
            .random_chirality(32)
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(9, 1 << 10, 33), Model::Basic).unwrap();
        let election = elect_leader(&mut net).unwrap();
        assert_unique_leader(&election);
        assert!(frames_are_coherent(&net, election.frames()));
        // O(log N) rounds: nontrivial move (≤ id_bits+1) + 2 + id_bits.
        assert!(election.rounds() <= 3 * net.id_bits() as u64 + 8);
    }

    #[test]
    fn algorithm_2_elects_the_maximum_id_on_even_rings() {
        let config = RingConfig::builder(10)
            .random_positions(34)
            .alternating_chirality()
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(10, 1 << 8, 35), Model::Basic).unwrap();
        let election = elect_leader(&mut net).unwrap();
        assert_unique_leader(&election);
    }

    #[test]
    fn common_direction_variant_matches_lemma_13() {
        for model in [Model::Basic, Model::Lazy, Model::Perceptive] {
            for n in [9usize, 10] {
                let config = RingConfig::builder(n)
                    .random_positions(36 + n as u64)
                    .aligned_chirality()
                    .build()
                    .unwrap();
                let mut net =
                    Network::new(&config, IdAssignment::random(n, 1 << 9, 37), model).unwrap();
                let frames = vec![Frame::identity(); n];
                let election = elect_leader_with_common_direction(&mut net, &frames).unwrap();
                assert_unique_leader(&election);
                // Lemma 13 elects the agent with the maximum identifier.
                assert_eq!(
                    election.leaders().next().unwrap(),
                    net.ground_truth_ids().max_id_agent()
                );
                let bits = net.id_bits() as u64;
                let bound = match (model, n % 2) {
                    (Model::Basic, 0) => bits * (bits + 2),
                    _ => bits + 2,
                };
                assert!(
                    election.rounds() <= bound.max(bits),
                    "model {model}, n {n}: {} rounds > bound {bound}",
                    election.rounds()
                );
            }
        }
    }

    #[test]
    fn frame_length_is_validated() {
        let config = RingConfig::builder(6).build().unwrap();
        let mut net = Network::new(&config, IdAssignment::consecutive(6), Model::Basic).unwrap();
        assert!(matches!(
            elect_leader_with_common_direction(&mut net, &[Frame::identity(); 2]),
            Err(ProtocolError::LengthMismatch { .. })
        ));
    }
}
