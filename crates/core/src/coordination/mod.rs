//! The paper's coordination problems: probing rounds, direction agreement,
//! the nontrivial-move problem, leader election and emptiness testing
//! (Sections II–IV).

pub mod diragr;
pub mod emptiness;
pub mod leader;
pub mod nontrivial;
pub mod probe;
