//! Direction agreement (Algorithm 1 of the paper).
//!
//! Given a direction assignment that induces a *nontrivial move* (rotation
//! index outside `{0, n/2}`), two rounds suffice for every agent to commit
//! to a common sense of direction: each agent executes the assignment twice
//! and flips its logical frame exactly when its two `dist()` readings add up
//! to more than one circumference. Whether that happens depends only on
//! whether the agent's own clockwise direction agrees with the direction of
//! the (global) rotation, so afterwards all logical frames coincide.

use crate::coordination::nontrivial::{solve_nontrivial_move, NontrivialMove};
use crate::error::ProtocolError;
use crate::exec::{Network, StepBuffers};
use ring_sim::{Frame, LocalDirection, CIRCUMFERENCE};

/// The result of a direction-agreement protocol.
#[derive(Clone, Debug)]
pub struct DirectionAgreement {
    frames: Vec<Frame>,
    rounds: u64,
}

impl DirectionAgreement {
    pub(crate) fn new(frames: Vec<Frame>, rounds: u64) -> Self {
        DirectionAgreement { frames, rounds }
    }

    /// The logical frame each agent has committed to. After agreement, the
    /// logical "right" of every agent denotes the same physical direction.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The frame of a single agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn frame(&self, agent: usize) -> Frame {
        self.frames[agent]
    }

    /// Rounds consumed by the agreement (including any rounds used to first
    /// obtain a nontrivial move).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

/// Algorithm 1: direction agreement from an already-known nontrivial move.
/// Costs exactly two rounds.
///
/// # Errors
///
/// Propagates substrate errors; returns [`ProtocolError::Internal`] if the
/// supplied assignment turns out not to rotate the ring at all (which would
/// mean it was not a nontrivial move).
pub fn agree_direction_with_move(
    net: &mut Network<'_>,
    nontrivial_directions: &[LocalDirection],
) -> Result<DirectionAgreement, ProtocolError> {
    let start = net.rounds_used();
    let mut bufs = StepBuffers::new();
    net.step_into(nontrivial_directions, &mut bufs)?;
    // Both rounds flow through one buffer set, so the first round's dist
    // readings are copied out before the second overwrites them.
    let first_ticks: Vec<u64> = bufs.observations().iter().map(|o| o.dist.ticks()).collect();
    net.step_into(nontrivial_directions, &mut bufs)?;
    if first_ticks[0] == 0 {
        return Err(ProtocolError::Internal {
            protocol: "direction-agreement",
            reason: "the supplied assignment has rotation index 0".into(),
        });
    }
    let frames = first_ticks
        .iter()
        .zip(bufs.observations())
        .map(|(&a, b)| {
            let wrapped = a + b.dist.ticks() > CIRCUMFERENCE;
            Frame::new(wrapped)
        })
        .collect();
    Ok(DirectionAgreement::new(frames, net.rounds_used() - start))
}

/// Full direction agreement: first obtains a nontrivial move appropriate for
/// the model and parity (Theorem 7's reductions), then applies Algorithm 1.
///
/// # Errors
///
/// Propagates errors from the nontrivial-move subroutine and the substrate.
pub fn agree_direction(net: &mut Network<'_>) -> Result<DirectionAgreement, ProtocolError> {
    let nm = solve_nontrivial_move(net)?;
    agree_direction_from(net, &nm)
}

/// Applies Algorithm 1 to a previously computed [`NontrivialMove`],
/// accumulating its round count into the result.
///
/// # Errors
///
/// Same as [`agree_direction_with_move`].
pub fn agree_direction_from(
    net: &mut Network<'_>,
    nm: &NontrivialMove,
) -> Result<DirectionAgreement, ProtocolError> {
    let agreement = agree_direction_with_move(net, nm.directions())?;
    Ok(DirectionAgreement::new(
        agreement.frames,
        agreement.rounds + nm.rounds(),
    ))
}

/// Ground-truth check used by tests and the experiment harness: whether the
/// frames produced by an agreement indeed point every agent's logical
/// "right" at the same objective direction.
pub fn frames_are_coherent(net: &Network<'_>, frames: &[Frame]) -> bool {
    let config = net.ground_truth_config();
    let objective: Vec<_> = (0..net.len())
        .map(|agent| {
            frames[agent]
                .to_physical(LocalDirection::Right)
                .to_objective(config.chirality(agent))
        })
        .collect();
    objective.iter().all(|d| *d == objective[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAssignment;
    use ring_sim::{Chirality, Model, RingConfig};

    #[test]
    fn agreement_from_explicit_nontrivial_move() {
        // 7 agents, mixed chirality; a single deviator from all-right gives
        // a nontrivial move regardless of the chirality pattern.
        let config = RingConfig::builder(7)
            .random_positions(5)
            .random_chirality(6)
            .build()
            .unwrap();
        let mut net = Network::new(&config, IdAssignment::consecutive(7), Model::Basic).unwrap();
        let mut dirs = vec![LocalDirection::Right; 7];
        dirs[2] = LocalDirection::Left;
        let agreement = agree_direction_with_move(&mut net, &dirs).unwrap();
        assert_eq!(agreement.rounds(), 2);
        assert!(frames_are_coherent(&net, agreement.frames()));
    }

    #[test]
    fn agreement_rejects_zero_rotation_assignments() {
        let config = RingConfig::builder(6)
            .random_positions(8)
            .aligned_chirality()
            .build()
            .unwrap();
        let mut net = Network::new(&config, IdAssignment::consecutive(6), Model::Basic).unwrap();
        let err = agree_direction_with_move(&mut net, &[LocalDirection::Right; 6]).unwrap_err();
        assert!(matches!(err, ProtocolError::Internal { .. }));
    }

    #[test]
    fn agreement_is_coherent_for_every_chirality_pattern_on_small_rings() {
        // Exhaustive over all chirality patterns of a 5-agent ring. The test
        // plays the adversary: it picks local directions whose *objective*
        // effect is "four agents clockwise, one anticlockwise", a nontrivial
        // move for every pattern, and checks that Algorithm 1 still aligns
        // everybody.
        for pattern in 0u32..32 {
            let chirality: Vec<Chirality> = (0..5)
                .map(|i| {
                    if pattern >> i & 1 == 1 {
                        Chirality::Reversed
                    } else {
                        Chirality::Aligned
                    }
                })
                .collect();
            let config = RingConfig::builder(5)
                .random_positions(9)
                .explicit_chirality(chirality.clone())
                .build()
                .unwrap();
            let mut net =
                Network::new(&config, IdAssignment::consecutive(5), Model::Basic).unwrap();
            let dirs: Vec<LocalDirection> = (0..5)
                .map(|agent| {
                    let wants_clockwise = agent != 4;
                    match (wants_clockwise, chirality[agent].is_aligned()) {
                        (true, true) | (false, false) => LocalDirection::Right,
                        _ => LocalDirection::Left,
                    }
                })
                .collect();
            let agreement = agree_direction_with_move(&mut net, &dirs).unwrap();
            assert!(
                frames_are_coherent(&net, agreement.frames()),
                "pattern {pattern:05b}"
            );
        }
    }

    #[test]
    fn full_agreement_solves_the_nontrivial_move_first() {
        let config = RingConfig::builder(9)
            .random_positions(11)
            .random_chirality(13)
            .build()
            .unwrap();
        let mut net =
            Network::new(&config, IdAssignment::random(9, 128, 17), Model::Basic).unwrap();
        let agreement = agree_direction(&mut net).unwrap();
        assert!(frames_are_coherent(&net, agreement.frames()));
        assert_eq!(agreement.rounds(), net.rounds_used());
    }
}
