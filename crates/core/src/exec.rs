//! The synchronous protocol executor.
//!
//! [`Network`] is the only interface protocol code has to the physical
//! world. It binds a [`RingConfig`] (hidden ground truth), an
//! [`IdAssignment`] and a [`Model`], and exposes
//!
//! * the public knowledge every agent shares — the identifier universe `N`,
//!   the parity of `n`, and the model;
//! * each agent's private input — its own identifier;
//! * [`Network::step`], which executes one synchronised round: it takes the
//!   direction chosen by every agent *in that agent's own frame*, enforces
//!   the model's restrictions, and returns every agent's [`Observation`],
//!   again in the agent's own frame, with collision information stripped
//!   unless the model is perceptive.
//!
//! Protocol implementations in this crate are written as lockstep drivers:
//! the same local rule is evaluated for every agent using only that agent's
//! state, and the chosen directions are submitted together through `step`.
//! Tests validate the outputs against the ground truth, which remains
//! accessible through the `ground_truth_*` methods (never used by protocol
//! logic).

use crate::error::ProtocolError;
use crate::fault::FaultPlan;
use crate::ids::{AgentId, IdAssignment};
use crate::structures::{fresh_structures, SharedStructures};
use ring_sim::{
    EngineKind, LocalDirection, Model, Observation, Parity, RingConfig, RingState, RotationIndex,
    RoundBuffers,
};
use std::fmt;

/// Reusable buffers for the zero-alloc round interface
/// ([`Network::step_into`], [`Network::run_schedule`]).
///
/// Create one per protocol run and thread it through every round: after the
/// vectors reach the ring size, no round allocates.
#[derive(Clone, Debug, Default)]
pub struct StepBuffers {
    round: RoundBuffers,
    directions: Vec<LocalDirection>,
}

impl StepBuffers {
    /// Creates an empty buffer set (vectors grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The observations of the last executed round, in each agent's own
    /// frame, with collision information already gated by the model.
    pub fn observations(&self) -> &[Observation] {
        &self.round.observations
    }
}

/// The executor: hidden ground truth plus the round interface.
#[derive(Clone)]
pub struct Network<'a> {
    ring: RingState<'a>,
    ids: IdAssignment,
    model: Model,
    engine: EngineKind,
    rounds: u64,
    last_rotation: Option<RotationIndex>,
    cumulative_dist: Vec<u64>,
    structures: SharedStructures,
    structure_seed: u64,
    faults: Option<FaultPlan>,
    fault_scratch: Vec<LocalDirection>,
    round_limit: Option<u64>,
}

impl fmt::Debug for Network<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("ring", &self.ring)
            .field("ids", &self.ids)
            .field("model", &self.model)
            .field("engine", &self.engine)
            .field("rounds", &self.rounds)
            .field("last_rotation", &self.last_rotation)
            .field("structures", &"<dyn StructureProvider>")
            .field("faults", &self.faults)
            .field("round_limit", &self.round_limit)
            .finish()
    }
}

impl<'a> Network<'a> {
    /// Creates an executor over the given configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the identifier assignment does not cover exactly
    /// the agents of the configuration.
    pub fn new(
        config: &'a RingConfig,
        ids: IdAssignment,
        model: Model,
    ) -> Result<Self, ProtocolError> {
        if ids.len() != config.len() {
            return Err(ProtocolError::LengthMismatch {
                what: "identifiers",
                got: ids.len(),
                expected: config.len(),
            });
        }
        Ok(Network {
            cumulative_dist: vec![0; config.len()],
            ring: RingState::new(config),
            ids,
            model,
            engine: EngineKind::Analytic,
            rounds: 0,
            last_rotation: None,
            structures: fresh_structures(),
            structure_seed: crate::coordination::nontrivial::STRUCTURE_SEED,
            faults: None,
            fault_scratch: Vec::new(),
            round_limit: None,
        })
    }

    /// Selects the physics engine (the analytic engine is the default; the
    /// event-driven engine is available for validation runs).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Installs a shared combinatorial-structure provider. Protocols obtain
    /// their distinguishers and selective families through it, so a sweep
    /// harness can hand every worker the same cache and have each structure
    /// constructed once. The default ([`crate::structures::FreshStructures`])
    /// constructs from scratch per request; either way the structures are
    /// bit-identical, so outcomes do not depend on the provider.
    pub fn with_structures(mut self, structures: SharedStructures) -> Self {
        self.structures = structures;
        self
    }

    /// The combinatorial-structure provider in force.
    pub fn structures(&self) -> &SharedStructures {
        &self.structures
    }

    /// Overrides the seed the distinguisher machinery hands its structure
    /// provider (the default is the fixed public
    /// [`STRUCTURE_SEED`](crate::coordination::nontrivial::STRUCTURE_SEED)).
    /// Sweep harnesses set a per-case seed here to measure the spread over
    /// structure randomness (seed-diverse sweeps); the seed is public
    /// knowledge — all agents agree on it — so protocol semantics are
    /// unchanged.
    pub fn with_structure_seed(mut self, seed: u64) -> Self {
        self.structure_seed = seed;
        self
    }

    /// The structure seed in force (see [`Network::with_structure_seed`]).
    pub fn structure_seed(&self) -> u64 {
        self.structure_seed
    }

    /// Installs a deterministic fault plan: from now on, every round first
    /// consults the plan and physically suppresses (forces idle) the moves
    /// of the agents it names — *after* the model's idle check, because a
    /// dropped message or a crashed station is a physical failure, not a
    /// protocol choice, and is legal even where idling is forbidden.
    ///
    /// Installing a plan also promotes the event-driven engine to the
    /// executor for this network: faulty runs are exactly the territory the
    /// analytic shortcuts were never validated on, so they run on the
    /// collision-exact reference simulator. (The two engines agree on
    /// fault-free plans; [`Network::with_engine`] after this call overrides
    /// the choice.)
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self.engine = EngineKind::Event;
        self
    }

    /// The fault plan in force, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Caps the total number of rounds this executor will run: the step
    /// after the cap fails with [`ProtocolError::RoundLimitReached`].
    /// Fault-injection harnesses use this as the timeout for runs that
    /// degrade past usefulness; protocol semantics below the cap are
    /// unchanged.
    pub fn with_round_limit(mut self, limit: u64) -> Self {
        self.round_limit = Some(limit);
        self
    }

    // ------------------------------------------------------------------
    // Public knowledge (available to every agent).
    // ------------------------------------------------------------------

    /// The identifier universe size `N`.
    pub fn universe(&self) -> u64 {
        self.ids.universe()
    }

    /// Number of bits needed to address the identifier universe.
    pub fn id_bits(&self) -> u32 {
        self.ids.id_bits()
    }

    /// The parity of the (otherwise unknown) ring size.
    pub fn parity(&self) -> Parity {
        Parity::of(self.ring.len())
    }

    /// The model in force.
    pub fn model(&self) -> Model {
        self.model
    }

    // ------------------------------------------------------------------
    // Private inputs (agent `i` may only look at index `i`).
    // ------------------------------------------------------------------

    /// The identifier of `agent` — that agent's private input.
    pub fn id_of(&self, agent: usize) -> AgentId {
        self.ids.id(agent)
    }

    // ------------------------------------------------------------------
    // Round execution.
    // ------------------------------------------------------------------

    /// Number of agents; used by the lockstep drivers to size their per-agent
    /// state vectors (an agent itself never learns `n`, only its parity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty (never true for valid configurations).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of rounds executed so far.
    pub fn rounds_used(&self) -> u64 {
        self.rounds
    }

    /// Executes one round.
    ///
    /// # Errors
    ///
    /// Returns an error if the direction vector has the wrong length or an
    /// agent idles in a non-lazy model.
    pub fn step(
        &mut self,
        directions: &[LocalDirection],
    ) -> Result<Vec<Observation>, ProtocolError> {
        let mut bufs = StepBuffers::new();
        self.step_into(directions, &mut bufs)?;
        Ok(std::mem::take(&mut bufs.round.observations))
    }

    /// Executes one round into a caller-owned [`StepBuffers`] — the
    /// zero-alloc variant of [`Network::step`]. Observations are read back
    /// through [`StepBuffers::observations`].
    ///
    /// # Errors
    ///
    /// Returns an error if the direction vector has the wrong length or an
    /// agent idles in a non-lazy model.
    pub fn step_into(
        &mut self,
        directions: &[LocalDirection],
        bufs: &mut StepBuffers,
    ) -> Result<(), ProtocolError> {
        if directions.len() != self.ring.len() {
            return Err(ProtocolError::LengthMismatch {
                what: "directions",
                got: directions.len(),
                expected: self.ring.len(),
            });
        }
        if !self.model.allows_idle() {
            if let Some(agent) = directions.iter().position(|d| !d.is_moving()) {
                return Err(ProtocolError::IdleForbidden {
                    agent,
                    model: self.model,
                });
            }
        }
        if let Some(limit) = self.round_limit {
            if self.rounds >= limit {
                return Err(ProtocolError::RoundLimitReached { limit });
            }
        }
        // Fault injection happens below the model check: a suppressed move
        // is a physical failure, not a protocol choice, so forcing idle here
        // is legal even in models that forbid idling.
        let rotation = match &self.faults {
            Some(plan) if plan.any_faults() => {
                let round = self.rounds;
                let mut faulted = std::mem::take(&mut self.fault_scratch);
                faulted.clear();
                faulted.extend(directions.iter().enumerate().map(|(agent, &dir)| {
                    if plan.suppressed(round, agent) {
                        LocalDirection::Idle
                    } else {
                        dir
                    }
                }));
                let result = self
                    .ring
                    .execute_round_into(&faulted, self.engine, &mut bufs.round);
                self.fault_scratch = faulted;
                result?
            }
            _ => self
                .ring
                .execute_round_into(directions, self.engine, &mut bufs.round)?,
        };
        self.rounds += 1;
        self.last_rotation = Some(rotation);
        // Two branch-free linear passes instead of one loop with a
        // per-agent conditional: the cumulative-distance update is a pure
        // add-mod streamed over two contiguous slices (vectorisable), and
        // collision stripping — when the model is blind to collisions —
        // becomes its own unconditional fill.
        for (acc, obs) in self
            .cumulative_dist
            .iter_mut()
            .zip(&bufs.round.observations)
        {
            *acc = (*acc + obs.dist.ticks()) % ring_sim::CIRCUMFERENCE;
        }
        if !self.model.observes_collisions() {
            for obs in &mut bufs.round.observations {
                obs.coll = None;
            }
        }
        Ok(())
    }

    /// Executes one round in which every agent moves opposite to
    /// `directions` (the paper's `REVERSEDROUND`), restoring the positions
    /// reached before the matching `step`.
    ///
    /// # Errors
    ///
    /// Same as [`Network::step`].
    pub fn step_reversed(
        &mut self,
        directions: &[LocalDirection],
    ) -> Result<Vec<Observation>, ProtocolError> {
        let reversed: Vec<LocalDirection> = directions.iter().map(|d| d.opposite()).collect();
        self.step(&reversed)
    }

    /// Zero-alloc variant of [`Network::step_reversed`]: the reversed
    /// directions are built in the buffer set's direction scratch and the
    /// round executes through [`Network::step_into`].
    ///
    /// # Errors
    ///
    /// Same as [`Network::step_into`].
    pub fn step_reversed_into(
        &mut self,
        directions: &[LocalDirection],
        bufs: &mut StepBuffers,
    ) -> Result<(), ProtocolError> {
        let mut reversed = std::mem::take(&mut bufs.directions);
        reversed.clear();
        reversed.extend(directions.iter().map(|d| d.opposite()));
        let result = self.step_into(&reversed, bufs);
        bufs.directions = reversed;
        result
    }

    /// Executes a whole direction schedule — one synchronized round per
    /// schedule entry — through one reusable buffer set, without
    /// intermediate allocation.
    ///
    /// For each entry `k = 0, 1, …`, `fill(k, &mut dirs)` writes the round's
    /// per-agent directions into the cleared buffer `dirs` and returns
    /// `false` to end the schedule. After each round, `stop(observations)`
    /// inspects the agents' observations (this is where lockstep drivers
    /// fold in per-agent bookkeeping) and returns `true` to stop early.
    ///
    /// Returns the index of the entry at which `stop` fired, or `None` when
    /// the schedule ran to exhaustion. Typical use: one distinguisher set
    /// per round, stopping at the first observably nontrivial move.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::step_into`] errors; the buffers stay usable.
    pub fn run_schedule<F, S>(
        &mut self,
        bufs: &mut StepBuffers,
        mut fill: F,
        mut stop: S,
    ) -> Result<Option<u64>, ProtocolError>
    where
        F: FnMut(u64, &mut Vec<LocalDirection>) -> bool,
        S: FnMut(&[Observation]) -> bool,
    {
        let mut dirs = std::mem::take(&mut bufs.directions);
        let mut hit = None;
        let mut entry = 0u64;
        loop {
            dirs.clear();
            if !fill(entry, &mut dirs) {
                break;
            }
            if let Err(e) = self.step_into(&dirs, bufs) {
                bufs.directions = dirs;
                return Err(e);
            }
            if stop(&bufs.round.observations) {
                hit = Some(entry);
                break;
            }
            entry += 1;
        }
        bufs.directions = dirs;
        Ok(hit)
    }

    /// The sum (modulo the circumference) of all `dist()` observations the
    /// agent has made so far, i.e. the agent's displacement from its initial
    /// position measured in its own clockwise direction.
    ///
    /// This is information the agent could trivially maintain itself by
    /// summing its observations; it is tracked centrally purely for
    /// convenience and is legitimate agent-local knowledge.
    pub fn observed_cumulative_dist(&self, agent: usize) -> ring_sim::ArcLength {
        ring_sim::ArcLength::from_ticks(self.cumulative_dist[agent])
    }

    // ------------------------------------------------------------------
    // Ground truth (tests and experiment harness only).
    // ------------------------------------------------------------------

    /// Ground truth: the underlying configuration.
    pub fn ground_truth_config(&self) -> &RingConfig {
        self.ring.config()
    }

    /// Ground truth: the slot currently occupied by each agent.
    pub fn ground_truth_slots(&self) -> &[usize] {
        self.ring.slots()
    }

    /// Ground truth: the rotation index of the last executed round.
    pub fn ground_truth_last_rotation(&self) -> Option<RotationIndex> {
        self.last_rotation
    }

    /// Ground truth: the identifier assignment.
    pub fn ground_truth_ids(&self) -> &IdAssignment {
        &self.ids
    }

    /// Ground truth: whether every agent is back at its initial position.
    pub fn ground_truth_at_initial_positions(&self) -> bool {
        self.ring.config().len() == self.ring.slots().len()
            && self.ring.slots().iter().enumerate().all(|(a, &s)| a == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::RingConfig;

    fn network(_model: Model) -> (RingConfig, IdAssignment) {
        let config = RingConfig::builder(6)
            .random_positions(1)
            .random_chirality(2)
            .build()
            .unwrap();
        let ids = IdAssignment::consecutive(6);
        (config, ids)
    }

    #[test]
    fn idle_is_rejected_outside_the_lazy_model() {
        let (config, ids) = network(Model::Basic);
        let mut net = Network::new(&config, ids.clone(), Model::Basic).unwrap();
        let mut dirs = vec![LocalDirection::Right; 6];
        dirs[3] = LocalDirection::Idle;
        assert!(matches!(
            net.step(&dirs),
            Err(ProtocolError::IdleForbidden { agent: 3, .. })
        ));

        let mut lazy = Network::new(&config, ids, Model::Lazy).unwrap();
        assert!(lazy.step(&dirs).is_ok());
    }

    #[test]
    fn collision_information_is_gated_by_the_model() {
        let (config, ids) = network(Model::Basic);
        let dirs: Vec<LocalDirection> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    LocalDirection::Right
                } else {
                    LocalDirection::Left
                }
            })
            .collect();

        let mut basic = Network::new(&config, ids.clone(), Model::Basic).unwrap();
        let obs = basic.step(&dirs).unwrap();
        assert!(obs.iter().all(|o| o.coll.is_none()));

        let mut perceptive = Network::new(&config, ids, Model::Perceptive).unwrap();
        let obs = perceptive.step(&dirs).unwrap();
        assert!(obs.iter().any(|o| o.coll.is_some()));
    }

    #[test]
    fn round_counting_and_reversal() {
        let (config, ids) = network(Model::Basic);
        let mut net = Network::new(&config, ids, Model::Basic).unwrap();
        let dirs = vec![LocalDirection::Right; 6];
        net.step(&dirs).unwrap();
        net.step_reversed(&dirs).unwrap();
        assert_eq!(net.rounds_used(), 2);
        assert!(net.ground_truth_at_initial_positions());
    }

    #[test]
    fn buffered_step_matches_allocating_step() {
        let (config, ids) = network(Model::Perceptive);
        let mut plain = Network::new(&config, ids.clone(), Model::Perceptive).unwrap();
        let mut buffered = Network::new(&config, ids, Model::Perceptive).unwrap();
        let mut bufs = StepBuffers::new();
        for round in 0..5 {
            let dirs: Vec<LocalDirection> = (0..6)
                .map(|i| {
                    if (i + round) % 2 == 0 {
                        LocalDirection::Right
                    } else {
                        LocalDirection::Left
                    }
                })
                .collect();
            let obs = plain.step(&dirs).unwrap();
            buffered.step_into(&dirs, &mut bufs).unwrap();
            assert_eq!(bufs.observations(), &obs[..]);
            assert_eq!(plain.ground_truth_slots(), buffered.ground_truth_slots());
            for agent in 0..6 {
                assert_eq!(
                    plain.observed_cumulative_dist(agent),
                    buffered.observed_cumulative_dist(agent)
                );
            }
        }
        assert_eq!(plain.rounds_used(), buffered.rounds_used());
    }

    #[test]
    fn buffered_step_gates_collisions_by_model() {
        let (config, ids) = network(Model::Basic);
        let dirs: Vec<LocalDirection> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    LocalDirection::Right
                } else {
                    LocalDirection::Left
                }
            })
            .collect();
        let mut basic = Network::new(&config, ids.clone(), Model::Basic).unwrap();
        let mut bufs = StepBuffers::new();
        basic.step_into(&dirs, &mut bufs).unwrap();
        assert!(bufs.observations().iter().all(|o| o.coll.is_none()));

        let mut perceptive = Network::new(&config, ids, Model::Perceptive).unwrap();
        perceptive.step_into(&dirs, &mut bufs).unwrap();
        assert!(bufs.observations().iter().any(|o| o.coll.is_some()));
    }

    #[test]
    fn run_schedule_stops_early_and_counts_rounds() {
        let (config, ids) = network(Model::Basic);
        let mut net = Network::new(&config, ids, Model::Basic).unwrap();
        let mut bufs = StepBuffers::new();
        // A schedule of five all-right rounds that stops at entry 2.
        let mut inspected = 0u64;
        let hit = net
            .run_schedule(
                &mut bufs,
                |k, dirs| {
                    if k >= 5 {
                        return false;
                    }
                    dirs.extend(std::iter::repeat_n(LocalDirection::Right, 6));
                    true
                },
                |obs| {
                    assert_eq!(obs.len(), 6);
                    inspected += 1;
                    inspected == 3
                },
            )
            .unwrap();
        assert_eq!(hit, Some(2));
        assert_eq!(net.rounds_used(), 3);

        // Exhausting the schedule returns None and executes every entry.
        let hit = net
            .run_schedule(
                &mut bufs,
                |k, dirs| {
                    if k >= 4 {
                        return false;
                    }
                    dirs.extend(std::iter::repeat_n(LocalDirection::Right, 6));
                    true
                },
                |_| false,
            )
            .unwrap();
        assert_eq!(hit, None);
        assert_eq!(net.rounds_used(), 7);
    }

    #[test]
    fn run_schedule_propagates_model_violations() {
        let (config, ids) = network(Model::Basic);
        let mut net = Network::new(&config, ids, Model::Basic).unwrap();
        let mut bufs = StepBuffers::new();
        let err = net
            .run_schedule(
                &mut bufs,
                |_, dirs| {
                    dirs.extend(std::iter::repeat_n(LocalDirection::Idle, 6));
                    true
                },
                |_| false,
            )
            .unwrap_err();
        assert!(matches!(err, ProtocolError::IdleForbidden { agent: 0, .. }));
    }

    #[test]
    fn faulted_steps_suppress_exactly_the_planned_agents() {
        use crate::fault::{FaultParams, FaultPlan};
        let (config, ids) = network(Model::Basic);
        // Full drop: every move is physically suppressed, so nobody moves —
        // even though the basic model forbids *choosing* to idle.
        let plan = FaultPlan::new(
            FaultParams {
                drop_per_mille: 1000,
                ..FaultParams::default()
            },
            6,
            11,
        );
        let mut net = Network::new(&config, ids.clone(), Model::Basic)
            .unwrap()
            .with_faults(plan);
        let mut bufs = StepBuffers::new();
        net.step_into(&[LocalDirection::Right; 6], &mut bufs)
            .unwrap();
        assert!(bufs.observations().iter().all(|o| o.dist.is_zero()));
        assert!(net.ground_truth_at_initial_positions());

        // The plan's per-round decisions and the executed suppression line
        // up: replay a partial-drop run against the plan's own verdicts.
        let plan = FaultPlan::new(
            FaultParams {
                drop_per_mille: 400,
                ..FaultParams::default()
            },
            6,
            13,
        );
        let reference = plan.clone();
        let mut net = Network::new(&config, ids, Model::Basic)
            .unwrap()
            .with_faults(plan);
        for round in 0..12u64 {
            net.step_into(&[LocalDirection::Right; 6], &mut bufs)
                .unwrap();
            // The executed objective directions expose exactly the plan's
            // suppressions: a dropped mover was forced idle, nobody else.
            for (agent, &objective) in bufs.round.objective_directions().iter().enumerate() {
                assert_eq!(
                    objective == ring_sim::ObjectiveDirection::Idle,
                    reference.suppressed(round, agent),
                    "round {round}, agent {agent}"
                );
            }
        }
        assert_eq!(net.rounds_used(), 12);
    }

    #[test]
    fn fault_free_plans_agree_across_engines() {
        use crate::fault::{FaultParams, FaultPlan};
        let (config, ids) = network(Model::Basic);
        // One network runs the analytic engine without any plan; the other
        // carries an empty fault plan, which promotes it to the event-driven
        // reference executor. The runs must agree round for round.
        let mut analytic = Network::new(&config, ids.clone(), Model::Basic).unwrap();
        let mut event = Network::new(&config, ids, Model::Basic)
            .unwrap()
            .with_faults(FaultPlan::new(FaultParams::default(), 6, 3));
        assert!(!event.faults().unwrap().any_faults());
        let mut bufs_a = StepBuffers::new();
        let mut bufs_e = StepBuffers::new();
        for round in 0..8 {
            let dirs: Vec<LocalDirection> = (0..6)
                .map(|i| {
                    if (i + round) % 3 == 0 {
                        LocalDirection::Left
                    } else {
                        LocalDirection::Right
                    }
                })
                .collect();
            analytic.step_into(&dirs, &mut bufs_a).unwrap();
            event.step_into(&dirs, &mut bufs_e).unwrap();
            assert_eq!(bufs_a.observations(), bufs_e.observations());
            assert_eq!(analytic.ground_truth_slots(), event.ground_truth_slots());
        }
    }

    #[test]
    fn round_limit_turns_into_a_timeout_error() {
        let (config, ids) = network(Model::Basic);
        let mut net = Network::new(&config, ids, Model::Basic)
            .unwrap()
            .with_round_limit(2);
        let dirs = vec![LocalDirection::Right; 6];
        net.step(&dirs).unwrap();
        net.step(&dirs).unwrap();
        assert!(matches!(
            net.step(&dirs),
            Err(ProtocolError::RoundLimitReached { limit: 2 })
        ));
        // The limit is checked before execution: the round count stays put.
        assert_eq!(net.rounds_used(), 2);
    }

    #[test]
    fn id_assignment_must_match_ring_size() {
        let (config, _) = network(Model::Basic);
        let short = IdAssignment::consecutive(4);
        assert!(matches!(
            Network::new(&config, short, Model::Basic),
            Err(ProtocolError::LengthMismatch { .. })
        ));
    }
}
