//! The synchronous protocol executor.
//!
//! [`Network`] is the only interface protocol code has to the physical
//! world. It binds a [`RingConfig`] (hidden ground truth), an
//! [`IdAssignment`] and a [`Model`], and exposes
//!
//! * the public knowledge every agent shares — the identifier universe `N`,
//!   the parity of `n`, and the model;
//! * each agent's private input — its own identifier;
//! * [`Network::step`], which executes one synchronised round: it takes the
//!   direction chosen by every agent *in that agent's own frame*, enforces
//!   the model's restrictions, and returns every agent's [`Observation`],
//!   again in the agent's own frame, with collision information stripped
//!   unless the model is perceptive.
//!
//! Protocol implementations in this crate are written as lockstep drivers:
//! the same local rule is evaluated for every agent using only that agent's
//! state, and the chosen directions are submitted together through `step`.
//! Tests validate the outputs against the ground truth, which remains
//! accessible through the `ground_truth_*` methods (never used by protocol
//! logic).

use crate::error::ProtocolError;
use crate::ids::{AgentId, IdAssignment};
use ring_sim::{
    EngineKind, LocalDirection, Model, Observation, Parity, RingConfig, RingState, RotationIndex,
};

/// The executor: hidden ground truth plus the round interface.
#[derive(Clone, Debug)]
pub struct Network<'a> {
    ring: RingState<'a>,
    ids: IdAssignment,
    model: Model,
    engine: EngineKind,
    rounds: u64,
    last_rotation: Option<RotationIndex>,
    cumulative_dist: Vec<u64>,
}

impl<'a> Network<'a> {
    /// Creates an executor over the given configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the identifier assignment does not cover exactly
    /// the agents of the configuration.
    pub fn new(
        config: &'a RingConfig,
        ids: IdAssignment,
        model: Model,
    ) -> Result<Self, ProtocolError> {
        if ids.len() != config.len() {
            return Err(ProtocolError::LengthMismatch {
                what: "identifiers",
                got: ids.len(),
                expected: config.len(),
            });
        }
        Ok(Network {
            cumulative_dist: vec![0; config.len()],
            ring: RingState::new(config),
            ids,
            model,
            engine: EngineKind::Analytic,
            rounds: 0,
            last_rotation: None,
        })
    }

    /// Selects the physics engine (the analytic engine is the default; the
    /// event-driven engine is available for validation runs).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    // ------------------------------------------------------------------
    // Public knowledge (available to every agent).
    // ------------------------------------------------------------------

    /// The identifier universe size `N`.
    pub fn universe(&self) -> u64 {
        self.ids.universe()
    }

    /// Number of bits needed to address the identifier universe.
    pub fn id_bits(&self) -> u32 {
        self.ids.id_bits()
    }

    /// The parity of the (otherwise unknown) ring size.
    pub fn parity(&self) -> Parity {
        Parity::of(self.ring.len())
    }

    /// The model in force.
    pub fn model(&self) -> Model {
        self.model
    }

    // ------------------------------------------------------------------
    // Private inputs (agent `i` may only look at index `i`).
    // ------------------------------------------------------------------

    /// The identifier of `agent` — that agent's private input.
    pub fn id_of(&self, agent: usize) -> AgentId {
        self.ids.id(agent)
    }

    // ------------------------------------------------------------------
    // Round execution.
    // ------------------------------------------------------------------

    /// Number of agents; used by the lockstep drivers to size their per-agent
    /// state vectors (an agent itself never learns `n`, only its parity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty (never true for valid configurations).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of rounds executed so far.
    pub fn rounds_used(&self) -> u64 {
        self.rounds
    }

    /// Executes one round.
    ///
    /// # Errors
    ///
    /// Returns an error if the direction vector has the wrong length or an
    /// agent idles in a non-lazy model.
    pub fn step(
        &mut self,
        directions: &[LocalDirection],
    ) -> Result<Vec<Observation>, ProtocolError> {
        if directions.len() != self.ring.len() {
            return Err(ProtocolError::LengthMismatch {
                what: "directions",
                got: directions.len(),
                expected: self.ring.len(),
            });
        }
        if !self.model.allows_idle() {
            if let Some(agent) = directions.iter().position(|d| !d.is_moving()) {
                return Err(ProtocolError::IdleForbidden {
                    agent,
                    model: self.model,
                });
            }
        }
        let outcome = self.ring.execute_round(directions, self.engine)?;
        self.rounds += 1;
        self.last_rotation = Some(outcome.rotation);
        for (acc, obs) in self.cumulative_dist.iter_mut().zip(&outcome.observations) {
            *acc = (*acc + obs.dist.ticks()) % ring_sim::CIRCUMFERENCE;
        }
        let observations = outcome
            .observations
            .into_iter()
            .map(|obs| {
                if self.model.observes_collisions() {
                    obs
                } else {
                    obs.without_coll()
                }
            })
            .collect();
        Ok(observations)
    }

    /// Executes one round in which every agent moves opposite to
    /// `directions` (the paper's `REVERSEDROUND`), restoring the positions
    /// reached before the matching `step`.
    ///
    /// # Errors
    ///
    /// Same as [`Network::step`].
    pub fn step_reversed(
        &mut self,
        directions: &[LocalDirection],
    ) -> Result<Vec<Observation>, ProtocolError> {
        let reversed: Vec<LocalDirection> = directions.iter().map(|d| d.opposite()).collect();
        self.step(&reversed)
    }

    /// The sum (modulo the circumference) of all `dist()` observations the
    /// agent has made so far, i.e. the agent's displacement from its initial
    /// position measured in its own clockwise direction.
    ///
    /// This is information the agent could trivially maintain itself by
    /// summing its observations; it is tracked centrally purely for
    /// convenience and is legitimate agent-local knowledge.
    pub fn observed_cumulative_dist(&self, agent: usize) -> ring_sim::ArcLength {
        ring_sim::ArcLength::from_ticks(self.cumulative_dist[agent])
    }

    // ------------------------------------------------------------------
    // Ground truth (tests and experiment harness only).
    // ------------------------------------------------------------------

    /// Ground truth: the underlying configuration.
    pub fn ground_truth_config(&self) -> &RingConfig {
        self.ring.config()
    }

    /// Ground truth: the slot currently occupied by each agent.
    pub fn ground_truth_slots(&self) -> &[usize] {
        self.ring.slots()
    }

    /// Ground truth: the rotation index of the last executed round.
    pub fn ground_truth_last_rotation(&self) -> Option<RotationIndex> {
        self.last_rotation
    }

    /// Ground truth: the identifier assignment.
    pub fn ground_truth_ids(&self) -> &IdAssignment {
        &self.ids
    }

    /// Ground truth: whether every agent is back at its initial position.
    pub fn ground_truth_at_initial_positions(&self) -> bool {
        self.ring.config().len() == self.ring.slots().len()
            && self.ring.slots().iter().enumerate().all(|(a, &s)| a == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_sim::RingConfig;

    fn network(_model: Model) -> (RingConfig, IdAssignment) {
        let config = RingConfig::builder(6)
            .random_positions(1)
            .random_chirality(2)
            .build()
            .unwrap();
        let ids = IdAssignment::consecutive(6);
        (config, ids)
    }

    #[test]
    fn idle_is_rejected_outside_the_lazy_model() {
        let (config, ids) = network(Model::Basic);
        let mut net = Network::new(&config, ids.clone(), Model::Basic).unwrap();
        let mut dirs = vec![LocalDirection::Right; 6];
        dirs[3] = LocalDirection::Idle;
        assert!(matches!(
            net.step(&dirs),
            Err(ProtocolError::IdleForbidden { agent: 3, .. })
        ));

        let mut lazy = Network::new(&config, ids, Model::Lazy).unwrap();
        assert!(lazy.step(&dirs).is_ok());
    }

    #[test]
    fn collision_information_is_gated_by_the_model() {
        let (config, ids) = network(Model::Basic);
        let dirs: Vec<LocalDirection> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    LocalDirection::Right
                } else {
                    LocalDirection::Left
                }
            })
            .collect();

        let mut basic = Network::new(&config, ids.clone(), Model::Basic).unwrap();
        let obs = basic.step(&dirs).unwrap();
        assert!(obs.iter().all(|o| o.coll.is_none()));

        let mut perceptive = Network::new(&config, ids, Model::Perceptive).unwrap();
        let obs = perceptive.step(&dirs).unwrap();
        assert!(obs.iter().any(|o| o.coll.is_some()));
    }

    #[test]
    fn round_counting_and_reversal() {
        let (config, ids) = network(Model::Basic);
        let mut net = Network::new(&config, ids, Model::Basic).unwrap();
        let dirs = vec![LocalDirection::Right; 6];
        net.step(&dirs).unwrap();
        net.step_reversed(&dirs).unwrap();
        assert_eq!(net.rounds_used(), 2);
        assert!(net.ground_truth_at_initial_positions());
    }

    #[test]
    fn id_assignment_must_match_ring_size() {
        let (config, _) = network(Model::Basic);
        let short = IdAssignment::consecutive(4);
        assert!(matches!(
            Network::new(&config, short, Model::Basic),
            Err(ProtocolError::LengthMismatch { .. })
        ));
    }
}
