//! Per-agent knowledge about the geometry of the ring.
//!
//! Every observation an agent makes is a linear equation over the unknown
//! gap vector `x_0, …, x_{n-1}` (the clockwise distances between consecutive
//! initial positions): `dist()` equations span the rotation arc of a round,
//! and `coll()` equations span the arc to the agent's first collision
//! (Lemma 6 of the paper expresses its lower bounds exactly in terms of how
//! many such equations a round can contribute). All of these equations are
//! sums of *contiguous* gap intervals, i.e. differences of prefix sums, so
//! an agent's knowledge is precisely a partition of the prefix positions
//! into groups with known pairwise offsets.
//!
//! [`GapKnowledge`] maintains that partition as a weighted union–find
//! structure: adding an equation is (amortised) near-constant time, and
//! location discovery is complete exactly when a single group remains.

use ring_sim::{ArcLength, CIRCUMFERENCE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A contradiction between a new equation and previously recorded knowledge.
///
/// With exact arithmetic this indicates a protocol bug (or a deliberately
/// corrupted observation in a fault-injection test), never rounding error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnowledgeConflict {
    /// The slot the offending equation starts at.
    pub from: usize,
    /// The slot the offending equation ends at.
    pub to: usize,
    /// The value implied by existing knowledge.
    pub expected: i128,
    /// The value of the new equation.
    pub got: i128,
}

impl fmt::Display for KnowledgeConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflicting arc equation from slot {} to slot {}: expected {}, got {}",
            self.from, self.to, self.expected, self.got
        )
    }
}

impl std::error::Error for KnowledgeConflict {}

/// Incremental knowledge about the gaps between the `n` initial positions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GapKnowledge {
    n: usize,
    parent: Vec<usize>,
    rank: Vec<u32>,
    /// `offset[i]` = (prefix position of `i`) − (prefix position of `parent[i]`).
    offset: Vec<i128>,
    components: usize,
    equations: u64,
}

impl GapKnowledge {
    /// Creates an empty knowledge base over `n` gaps (`n` slots).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a ring needs at least two slots");
        GapKnowledge {
            n,
            parent: (0..n).collect(),
            rank: vec![0; n],
            offset: vec![0; n],
            components: n,
            equations: 0,
        }
    }

    /// Number of slots (and gaps).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the knowledge base covers no slots (never true).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of equations recorded so far (including redundant ones).
    pub fn equations_recorded(&self) -> u64 {
        self.equations
    }

    /// Number of remaining independent groups of prefix positions. Location
    /// discovery is complete when this reaches 1.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Whether every gap is determined.
    pub fn is_complete(&self) -> bool {
        self.components == 1
    }

    /// Records that the clockwise arc from slot `from` to slot `to`
    /// (wrapping past slot 0 if `to <= from`) has length `arc`.
    ///
    /// An equation from a slot to itself is interpreted as the full circle
    /// and carries no information (it is checked for consistency with
    /// `CIRCUMFERENCE` and otherwise ignored).
    ///
    /// # Errors
    ///
    /// Returns a [`KnowledgeConflict`] if the equation contradicts earlier
    /// ones.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is out of range.
    pub fn add_cw_arc(
        &mut self,
        from: usize,
        to: usize,
        arc: ArcLength,
    ) -> Result<(), KnowledgeConflict> {
        assert!(from < self.n && to < self.n, "slot out of range");
        self.equations += 1;
        let v = arc.ticks() as i128;
        if from == to {
            // Either a zero-length observation or the full circle; neither
            // relates two distinct prefix positions.
            return Ok(());
        }
        // Clockwise from `from` to `to`: P_to - P_from = v, adjusted by a
        // full circumference when the arc wraps past slot 0.
        let diff = if to > from {
            v
        } else {
            v - CIRCUMFERENCE as i128
        };
        self.union(from, to, diff)
    }

    /// The difference `P_to − P_from` between two prefix positions if they
    /// are in the same knowledge group.
    pub fn relation(&self, from: usize, to: usize) -> Option<i128> {
        let (ra, pa) = self.find(from);
        let (rb, pb) = self.find(to);
        if ra == rb {
            Some(pb - pa)
        } else {
            None
        }
    }

    /// The clockwise distance from slot `from` to slot `to`, if known.
    pub fn cw_distance(&self, from: usize, to: usize) -> Option<ArcLength> {
        if from == to {
            return Some(ArcLength::ZERO);
        }
        self.relation(from, to).map(|d| {
            let ticks = d.rem_euclid(CIRCUMFERENCE as i128) as u64;
            ArcLength::from_ticks(ticks)
        })
    }

    /// The gap between slot `i` and slot `(i + 1) % n`, if known.
    pub fn gap(&self, i: usize) -> Option<ArcLength> {
        self.cw_distance(i, (i + 1) % self.n)
    }

    /// All gaps, if location discovery is complete.
    pub fn gaps(&self) -> Option<Vec<ArcLength>> {
        if !self.is_complete() {
            return None;
        }
        Some(
            (0..self.n)
                .map(|i| self.gap(i).expect("complete"))
                .collect(),
        )
    }

    fn find(&self, mut i: usize) -> (usize, i128) {
        // Non-mutating find (no path compression) so that read-only queries
        // can take `&self`; the union operation compresses.
        let mut pot = 0i128;
        while self.parent[i] != i {
            pot += self.offset[i];
            i = self.parent[i];
        }
        (i, pot)
    }

    fn find_compress(&mut self, i: usize) -> (usize, i128) {
        if self.parent[i] == i {
            return (i, 0);
        }
        let (root, parent_pot) = self.find_compress(self.parent[i]);
        let pot = self.offset[i] + parent_pot;
        self.parent[i] = root;
        self.offset[i] = pot;
        (root, pot)
    }

    /// Records `P_to − P_from = diff`.
    fn union(&mut self, from: usize, to: usize, diff: i128) -> Result<(), KnowledgeConflict> {
        let (ra, pa) = self.find_compress(from);
        let (rb, pb) = self.find_compress(to);
        if ra == rb {
            let expected = pb - pa;
            if expected != diff {
                return Err(KnowledgeConflict {
                    from,
                    to,
                    expected,
                    got: diff,
                });
            }
            return Ok(());
        }
        // Attach the shallower tree below the deeper one.
        // We need: P_to = P_from + diff, with P_from = P_ra + pa, P_to = P_rb + pb.
        // Hence P_rb = P_ra + pa + diff - pb.
        let rb_minus_ra = pa + diff - pb;
        if self.rank[ra] < self.rank[rb] {
            // ra joins rb: P_ra = P_rb - rb_minus_ra.
            self.parent[ra] = rb;
            self.offset[ra] = -rb_minus_ra;
        } else {
            self.parent[rb] = ra;
            self.offset[rb] = rb_minus_ra;
            if self.rank[ra] == self.rank[rb] {
                self.rank[ra] += 1;
            }
        }
        self.components -= 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(t: u64) -> ArcLength {
        ArcLength::from_ticks(t)
    }

    #[test]
    fn single_gap_equations_complete_the_ring() {
        // Gaps 10, 20, 30, and the rest of the circle.
        let mut k = GapKnowledge::new(4);
        assert_eq!(k.components(), 4);
        k.add_cw_arc(0, 1, arc(10)).unwrap();
        k.add_cw_arc(1, 2, arc(20)).unwrap();
        k.add_cw_arc(2, 3, arc(30)).unwrap();
        assert!(k.is_complete());
        assert_eq!(k.gap(0).unwrap().ticks(), 10);
        assert_eq!(k.gap(3).unwrap().ticks(), CIRCUMFERENCE - 60);
        let gaps = k.gaps().unwrap();
        assert_eq!(gaps.iter().map(|g| g.ticks()).sum::<u64>(), CIRCUMFERENCE);
    }

    #[test]
    fn wrapping_arcs_are_handled() {
        let mut k = GapKnowledge::new(5);
        // Arc from slot 3 to slot 1, wrapping past slot 0.
        k.add_cw_arc(3, 1, arc(500)).unwrap();
        assert_eq!(k.cw_distance(3, 1).unwrap().ticks(), 500);
        assert_eq!(k.cw_distance(1, 3).unwrap().ticks(), CIRCUMFERENCE - 500);
        assert!(!k.is_complete());
    }

    #[test]
    fn pair_sums_on_an_odd_ring_determine_everything() {
        // The basic-model odd-n location discovery feeds equations
        // x_i + x_{i+1} = s_i for every i; with n odd they pin every gap.
        let n = 7;
        let gaps: Vec<u64> = vec![100, 200, 300, 400, 500, 600, CIRCUMFERENCE - 2100];
        let mut k = GapKnowledge::new(n);
        for i in 0..n {
            let sum = gaps[i] + gaps[(i + 1) % n];
            k.add_cw_arc(i, (i + 2) % n, arc(sum)).unwrap();
            if i < n - 1 {
                assert!(!k.is_complete() || i == n - 2);
            }
        }
        assert!(k.is_complete());
        for (i, &expected) in gaps.iter().enumerate() {
            assert_eq!(k.gap(i).unwrap().ticks(), expected, "gap {i}");
        }
    }

    #[test]
    fn pair_sums_on_an_even_ring_do_not_determine_everything() {
        // With n even the pair-sum system is singular (this is the algebraic
        // face of Lemma 5's impossibility result).
        let n = 6;
        let gaps: Vec<u64> = vec![100, 200, 300, 400, 500, CIRCUMFERENCE - 1500];
        let mut k = GapKnowledge::new(n);
        for i in 0..n {
            let sum = gaps[i] + gaps[(i + 1) % n];
            k.add_cw_arc(i, (i + 2) % n, arc(sum)).unwrap();
        }
        assert!(!k.is_complete());
        assert_eq!(k.components(), 2);
        assert!(k.gap(0).is_none());
        // Within one parity class relations are known.
        assert!(k.cw_distance(0, 2).is_some());
        assert!(k.cw_distance(1, 5).is_some());
    }

    #[test]
    fn conflicting_equations_are_detected() {
        let mut k = GapKnowledge::new(4);
        k.add_cw_arc(0, 2, arc(100)).unwrap();
        k.add_cw_arc(0, 1, arc(60)).unwrap();
        let err = k.add_cw_arc(1, 2, arc(50)).unwrap_err();
        assert_eq!(err.expected, 40);
        assert_eq!(err.got, 50);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn redundant_and_degenerate_equations_are_accepted() {
        let mut k = GapKnowledge::new(4);
        k.add_cw_arc(0, 1, arc(10)).unwrap();
        k.add_cw_arc(0, 1, arc(10)).unwrap();
        // Full-circle observation about a single slot: ignored.
        k.add_cw_arc(2, 2, arc(CIRCUMFERENCE)).unwrap();
        assert_eq!(k.equations_recorded(), 3);
        assert_eq!(k.components(), 3);
    }

    #[test]
    fn equation_counting_matches_lemma_6_intuition() {
        // n-1 independent single-gap equations are necessary and sufficient.
        let n = 16;
        let mut k = GapKnowledge::new(n);
        for i in 0..n - 2 {
            k.add_cw_arc(i, i + 1, arc(10 + i as u64)).unwrap();
        }
        assert!(!k.is_complete());
        k.add_cw_arc(n - 2, n - 1, arc(999)).unwrap();
        assert!(k.is_complete());
    }
}
