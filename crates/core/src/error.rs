//! Error types for protocol execution.

use ring_sim::RingError;
use std::error::Error;
use std::fmt;

/// Errors produced while setting up or executing a protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// An error bubbled up from the kinematic substrate.
    Sim(RingError),
    /// An agent attempted to idle in a model that forbids idling.
    IdleForbidden {
        /// Index of the offending agent.
        agent: usize,
        /// The model in force.
        model: ring_sim::Model,
    },
    /// The number of per-agent items supplied does not match the ring size.
    LengthMismatch {
        /// What was being supplied.
        what: &'static str,
        /// Number of items supplied.
        got: usize,
        /// Expected number (the ring size).
        expected: usize,
    },
    /// Agent identifiers must be distinct and within `[1, N]`.
    InvalidIds {
        /// Human-readable reason.
        reason: String,
    },
    /// A protocol exceeded its round budget, indicating either a bug or a
    /// configuration outside the protocol's assumptions.
    RoundBudgetExceeded {
        /// Name of the protocol.
        protocol: &'static str,
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The protocol reached a state that contradicts its invariants.
    Internal {
        /// Name of the protocol.
        protocol: &'static str,
        /// Human-readable description.
        reason: String,
    },
    /// The requested task is impossible in the given setting (for example
    /// location discovery in the basic model with even `n`, Lemma 5).
    Unsolvable {
        /// Human-readable reason, typically citing the paper's lemma.
        reason: &'static str,
    },
    /// The executor's round limit was reached (see
    /// [`Network::with_round_limit`](crate::exec::Network::with_round_limit)).
    /// Fault-injection harnesses use this as the timeout signal for runs
    /// that degrade past usefulness.
    RoundLimitReached {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Sim(e) => write!(f, "substrate error: {e}"),
            ProtocolError::IdleForbidden { agent, model } => {
                write!(f, "agent {agent} chose to idle in the {model} model")
            }
            ProtocolError::LengthMismatch {
                what,
                got,
                expected,
            } => write!(f, "expected {expected} {what}, got {got}"),
            ProtocolError::InvalidIds { reason } => write!(f, "invalid identifiers: {reason}"),
            ProtocolError::RoundBudgetExceeded { protocol, budget } => {
                write!(
                    f,
                    "protocol {protocol} exceeded its budget of {budget} rounds"
                )
            }
            ProtocolError::Internal { protocol, reason } => {
                write!(
                    f,
                    "protocol {protocol} violated an internal invariant: {reason}"
                )
            }
            ProtocolError::Unsolvable { reason } => write!(f, "task is unsolvable: {reason}"),
            ProtocolError::RoundLimitReached { limit } => {
                write!(f, "executor round limit of {limit} rounds reached")
            }
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RingError> for ProtocolError {
    fn from(e: RingError) -> Self {
        ProtocolError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let errors: Vec<ProtocolError> = vec![
            ProtocolError::Sim(RingError::TooFewAgents { n: 1, min: 5 }),
            ProtocolError::IdleForbidden {
                agent: 0,
                model: ring_sim::Model::Basic,
            },
            ProtocolError::LengthMismatch {
                what: "ids",
                got: 1,
                expected: 2,
            },
            ProtocolError::InvalidIds {
                reason: "duplicate".into(),
            },
            ProtocolError::RoundBudgetExceeded {
                protocol: "test",
                budget: 10,
            },
            ProtocolError::Internal {
                protocol: "test",
                reason: "oops".into(),
            },
            ProtocolError::Unsolvable { reason: "Lemma 5" },
            ProtocolError::RoundLimitReached { limit: 100 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sim_errors_convert_and_expose_source() {
        let e: ProtocolError = RingError::PositionGeneration { n: 3 }.into();
        assert!(matches!(e, ProtocolError::Sim(_)));
        assert!(Error::source(&e).is_some());
    }
}
