//! # ring-protocols
//!
//! Deterministic symmetry-breaking protocols for bouncing mobile agents on a
//! ring — a faithful implementation of the algorithms of
//! "Deterministic Symmetry Breaking in Ring Networks"
//! (Gąsieniec, Jurdziński, Martin, Stachowiak; ICDCS 2015).
//!
//! The crate is organised around the problems studied in the paper:
//!
//! * **Coordination problems** ([`coordination`]): the nontrivial-move
//!   problem, direction agreement, leader election and emptiness testing, in
//!   the basic, lazy and perceptive models, with and without a common sense
//!   of direction, for odd and even ring sizes.
//! * **Location discovery** ([`locate`]): each agent determines the initial
//!   position of every other agent. `n + O(log N)` rounds in the lazy model
//!   (or the basic model with odd `n`).
//! * **The perceptive-model stack** ([`perceptive`]): neighbour discovery,
//!   a 1-bit-per-round communication layer built purely out of collision
//!   observations, information dissemination, the `NMoveS` nontrivial-move
//!   algorithm, ring-distance discovery (`RingDist`) and the
//!   `n/2 + o(n)`-round location discovery (`Distances`).
//! * **Pipelines** ([`pipeline`]): ready-made end-to-end flows matching the
//!   rows of Tables I and II of the paper, with per-phase round accounting.
//!
//! The physical substrate (positions, rounds, collisions, observations)
//! lives in the companion crate [`ring_sim`]; combinatorial machinery
//! (distinguishers and selective families) lives in [`ring_combinat`].
//!
//! # Example
//!
//! ```
//! use ring_protocols::prelude::*;
//! use ring_sim::prelude::*;
//!
//! # fn main() -> Result<(), ProtocolError> {
//! // A ring of 9 agents with random positions, random chirality and random
//! // identifiers from the universe [1, 64].
//! let config = RingConfig::builder(9)
//!     .random_positions(1)
//!     .random_chirality(2)
//!     .build()
//!     .expect("valid configuration");
//! let ids = IdAssignment::random(9, 64, 3);
//! let mut net = Network::new(&config, ids, Model::Basic)?;
//!
//! // Elect a leader (odd ring size: O(log N) rounds).
//! let election = elect_leader(&mut net)?;
//! assert_eq!(election.leaders().count(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod coordination;
pub mod error;
pub mod exec;
pub mod fault;
pub mod ids;
pub mod knowledge;
pub mod locate;
pub mod perceptive;
pub mod pipeline;
pub mod structures;

pub use coordination::diragr::{agree_direction, DirectionAgreement};
pub use coordination::emptiness::{
    test_emptiness, test_emptiness_with, EmptinessOutcome, EmptinessScratch,
};
pub use coordination::leader::{elect_leader, elect_leader_with_common_direction, LeaderElection};
pub use coordination::nontrivial::{solve_nontrivial_move, NontrivialMove};
pub use coordination::probe::{probe_move, MoveClass};
pub use error::ProtocolError;
pub use exec::Network;
pub use fault::{FaultParams, FaultPlan};
pub use ids::{AgentId, IdAssignment};
pub use knowledge::{GapKnowledge, KnowledgeConflict};
pub use locate::{discover_locations, LocationDiscovery};
pub use structures::{fresh_structures, FreshStructures, SharedStructures, StructureProvider};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::coordination::diragr::{agree_direction, DirectionAgreement};
    pub use crate::coordination::emptiness::{
        test_emptiness, test_emptiness_with, EmptinessOutcome, EmptinessScratch,
    };
    pub use crate::coordination::leader::{
        elect_leader, elect_leader_with_common_direction, LeaderElection,
    };
    pub use crate::coordination::nontrivial::{solve_nontrivial_move, NontrivialMove};
    pub use crate::coordination::probe::{probe_move, MoveClass};
    pub use crate::error::ProtocolError;
    pub use crate::exec::Network;
    pub use crate::fault::{FaultParams, FaultPlan};
    pub use crate::ids::{AgentId, IdAssignment};
    pub use crate::knowledge::GapKnowledge;
    pub use crate::locate::{discover_locations, LocationDiscovery};
    pub use crate::pipeline::{run_pipeline, PipelineReport};
    pub use crate::structures::{fresh_structures, SharedStructures, StructureProvider};
}
