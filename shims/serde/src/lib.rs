//! Offline shim for the `serde` facade.
//!
//! Implements the exact surface this workspace consumes: the
//! [`Serialize`]/[`Deserialize`] traits, their derive macros (re-exported
//! from the companion `serde_derive` shim) and a JSON-shaped [`Value`] data
//! model that `serde_json::to_string_pretty` renders. See `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value: the serialization data model of the shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every signed width up to `i128`).
    Int(i128),
    /// Unsigned integer.
    Uint(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value (`None` for non-objects and
    /// missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            Value::Uint(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert; strings do not).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Uint(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's `(key, value)` pairs in document order.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether the value is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can serialize themselves into the JSON [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// Nothing in this workspace deserializes — results are only written out —
/// so the trait carries no methods.
pub trait Deserialize {}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Uint(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {}
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(7u64.to_json(), Value::Uint(7));
        assert_eq!((-3i128).to_json(), Value::Int(-3));
        assert_eq!(true.to_json(), Value::Bool(true));
        assert_eq!(None::<u64>.to_json(), Value::Null);
        assert_eq!(
            vec![1u32, 2].to_json(),
            Value::Array(vec![Value::Uint(1), Value::Uint(2)])
        );
        assert_eq!(
            (1usize, 2usize).to_json(),
            Value::Array(vec![Value::Uint(1), Value::Uint(2)])
        );
    }
}
