//! Offline shim for `proptest`.
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] harness macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prop_oneof!`], and a [`Strategy`] trait with ranges, [`Just`],
//! [`any`], tuples, [`collection::vec`], `prop_flat_map` and `boxed`.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the case index, and the deterministic per-case RNG means re-running
//! the test reproduces it exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random source for strategies.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// The RNG for one case of one property (deterministic).
    pub fn for_case(case: u32) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(0x70726f70_u64 ^ (u64::from(case) << 1)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.gen_range(0..n)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }

    /// Generates a value, then generates from the strategy built from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Maps generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union of alternatives (must be nonempty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical full-domain strategy (the shim's `Arbitrary`).
pub trait ArbitraryValue {
    /// Draws a uniformly distributed value.
    fn any_value(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn any_value(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn any_value(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl ArbitraryValue for usize {
    fn any_value(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl ArbitraryValue for bool {
    fn any_value(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy over a type's full domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::any_value(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors of exactly `count` elements.
    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    /// Generates `count` elements with `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.count)
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy over both booleans.
    pub struct AnyBool;

    /// The full boolean domain.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }
}

/// Runs property functions over many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@inner $cfg; $($rest)*}
    };
    (@inner $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(__case);
                let ($($pat,)+) = {
                    #[allow(unused_imports)]
                    use $crate::Strategy as _;
                    ($($crate::Strategy::generate(&($strat), &mut __rng),)+)
                };
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!{@inner $crate::ProptestConfig::default(); $($rest)*}
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (1u64..10, 5usize..=6)) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b == 5 || b == 6);
        }

        #[test]
        fn oneof_vec_and_flat_map(
            v in (1usize..5).prop_flat_map(|n| {
                let item = prop_oneof![Just(0u8), Just(1u8)].boxed();
                (Just(n), crate::collection::vec(item, n))
            }),
        ) {
            let (n, items) = v;
            prop_assert_eq!(items.len(), n);
            prop_assert!(items.iter().all(|&x| x <= 1));
        }

        #[test]
        fn any_is_exercised(x in any::<u64>(), flag in crate::bool::ANY) {
            let _ = (x, flag);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case(3);
        let mut b = crate::TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
