//! Offline shim for `serde_json`: renders the shim serde [`Value`] model as
//! JSON text. Only the surface this workspace consumes is implemented
//! (`to_string`, `to_string_pretty`). See `shims/README.md`.

pub use serde::Value;
use std::fmt;

/// Serialization error (never produced by the shim, present for API
/// compatibility with `serde_json::Result`).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: always carry a decimal point or exponent.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Uint(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Float(1.5)),
            ("s".into(), Value::Str("x\"y".into())),
        ]);
        struct W(Value);
        impl serde::Serialize for W {
            fn to_json(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&W(v.clone())).unwrap(),
            r#"{"a":1,"b":[true,null],"c":1.5,"s":"x\"y"}"#
        );
        let pretty = to_string_pretty(&W(v)).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        struct W;
        impl serde::Serialize for W {
            fn to_json(&self) -> Value {
                Value::Float(3.0)
            }
        }
        assert_eq!(to_string(&W).unwrap(), "3.0");
    }
}
