//! Offline shim for `serde_json`: renders the shim serde [`Value`] model as
//! JSON text and parses JSON text back into it. Only the surface this
//! workspace consumes is implemented (`to_string`, `to_string_pretty`,
//! [`from_str`] to a [`Value`]). See `shims/README.md`.

pub use serde::Value;
use std::fmt;

/// Serialization / parse error. Serialization never fails; parsing reports
/// the byte offset and a short description.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn parse(offset: usize, message: impl Into<String>) -> Self {
        Error {
            message: format!("JSON parse error at byte {offset}: {}", message.into()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into the shim [`Value`] model.
///
/// Unlike the real crate this is not generic over `Deserialize` (the shim's
/// `Deserialize` is a marker trait); callers pattern-match or use the
/// [`Value`] accessors.
///
/// # Errors
///
/// Returns an [`Error`] describing the first malformed byte.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::parse(pos, "trailing characters after the document"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::parse(*pos, format!("expected `{}`", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::parse(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::parse(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::parse(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(Error::parse(
            *pos,
            format!("unexpected byte `{}`", b as char),
        )),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(Error::parse(*pos, format!("expected `{literal}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::parse(start, "invalid number"))?;
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Uint(u));
        }
        if let Ok(i) = text.parse::<i128>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error::parse(start, format!("malformed number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::parse(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let high = parse_hex4(bytes, pos)?;
                        let code = if (0xd800..0xdc00).contains(&high) {
                            // Surrogate pair: the low half must follow.
                            *pos += 1;
                            expect(bytes, pos, b'\\')?;
                            if bytes.get(*pos) != Some(&b'u') {
                                return Err(Error::parse(*pos, "expected low surrogate"));
                            }
                            let low = parse_hex4(bytes, pos)?;
                            0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
                        } else {
                            high
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::parse(*pos, "invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::parse(*pos, "invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the input is a &str, so the
                // boundary arithmetic is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::parse(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses the `XXXX` of a `\uXXXX` escape; `pos` is on the `u` on entry and
/// on the last hex digit on exit.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(Error::parse(*pos, "truncated unicode escape"));
    }
    let text = std::str::from_utf8(&bytes[start..end])
        .map_err(|_| Error::parse(start, "invalid unicode escape"))?;
    let code =
        u32::from_str_radix(text, 16).map_err(|_| Error::parse(start, "invalid unicode escape"))?;
    *pos = end - 1;
    Ok(code)
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: always carry a decimal point or exponent.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::Uint(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Float(1.5)),
            ("s".into(), Value::Str("x\"y".into())),
        ]);
        struct W(Value);
        impl serde::Serialize for W {
            fn to_json(&self) -> Value {
                self.0.clone()
            }
        }
        assert_eq!(
            to_string(&W(v.clone())).unwrap(),
            r#"{"a":1,"b":[true,null],"c":1.5,"s":"x\"y"}"#
        );
        let pretty = to_string_pretty(&W(v)).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        struct W;
        impl serde::Serialize for W {
            fn to_json(&self) -> Value {
                Value::Float(3.0)
            }
        }
        assert_eq!(to_string(&W).unwrap(), "3.0");
    }

    #[test]
    fn parses_every_value_kind() {
        let v = from_str(r#" {"a": 1, "b": [true, null, -2, 1.5e3], "s": "x\"\né", "o": {}} "#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert!(b[1].is_null());
        assert_eq!(b[2].as_i64(), Some(-2));
        assert_eq!(b[3].as_f64(), Some(1500.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"\né"));
        assert_eq!(v.get("o").unwrap().as_object(), Some(&[][..]));
    }

    #[test]
    fn parse_round_trips_serialized_output() {
        let v = Value::Object(vec![
            ("neg".into(), Value::Int(-7)),
            ("big".into(), Value::Uint(u64::MAX)),
            ("f".into(), Value::Float(0.125)),
            ("t".into(), Value::Str("tab\there".into())),
            (
                "list".into(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        struct W(Value);
        impl serde::Serialize for W {
            fn to_json(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&W(v.clone())).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&W(v.clone())).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        // Raw UTF-8 and the escaped surrogate pair decode to the same char.
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::Str("😀".to_string()));
        assert_eq!(
            from_str("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".to_string())
        );
    }
}
