//! Offline shim for `rand` 0.8.
//!
//! [`rngs::StdRng`] is a xoshiro256\*\* generator seeded through SplitMix64,
//! which matches the statistical quality the workspace needs (reproducible
//! probabilistic constructions, shuffles and coin flips) without the
//! unavailable `rand_chacha` backend. The stream differs from the real
//! `StdRng`; every seed-dependent expectation in this repository is
//! self-consistent with this shim. See `shims/README.md`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the one constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of type `Self` from uniform random bits
/// (the shim's stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly sampleable over a range.
pub trait UniformInt: Copy {
    /// Uniform draw from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sampling range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Unbiased modulo rejection; the rejection loop is entered
                // with probability < 2^-32 for the ranges used here.
                let span = span + 1;
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let raw = rng.next_u64();
                    if raw < zone || zone == 0 {
                        return low.wrapping_add((raw % span) as $t);
                    }
                }
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform draw from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt + PartialOrd + One> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range range");
        T::sample_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for converting an exclusive upper bound into an inclusive one.
pub trait One {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self { self - 1 }
        }
    )*};
}

one!(u8, u16, u32, u64, usize);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`bool`, `u32`, `u64`, `usize`,
    /// `f64`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* seeded via
    /// SplitMix64 (deterministic given the seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling of slices (the one method the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn coin_flips_are_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
