//! Offline shim for `criterion` 0.5.
//!
//! Implements the benchmarking surface this workspace uses — groups,
//! `BenchmarkId`, `Bencher::iter`, `sample_size`/`measurement_time`/
//! `warm_up_time`, `black_box` and the two harness macros — with real
//! wall-clock measurement via [`std::time::Instant`]: a warm-up phase,
//! adaptive batch sizing, then `sample_size` timed samples, reporting the
//! median and min/max per benchmark.
//!
//! Two environment knobs integrate the shim with the repository's
//! performance tracking (see the "Performance" section of ROADMAP.md):
//!
//! * `CRITERION_OUTPUT_JSON=path` — append one JSON record per benchmark to
//!   `path` (JSON Lines, one object per line);
//! * `CRITERION_QUICK=1` — cap sampling for CI smoke runs.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark harness handle passed to every benchmark function.
pub struct Criterion {
    quick: bool,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1"),
            json_path: std::env::var("CRITERION_OUTPUT_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(1000),
            warm_up_time: Duration::from_millis(200),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
        group.finish();
        self
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// Benchmarks a closure that receives an input reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full_name = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let (sample_size, warm_up, measurement) = if self.criterion.quick {
            (
                self.sample_size.min(3),
                Duration::from_millis(20),
                Duration::from_millis(100),
            )
        } else {
            (self.sample_size, self.warm_up_time, self.measurement_time)
        };

        let mut bencher = Bencher {
            mode: Mode::WarmUp { until: warm_up },
            iters_per_sample: 1,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);

        // Derive iterations-per-sample so that `sample_size` samples
        // roughly fill the measurement budget.
        let per_iter_ns = bencher.warmup_ns_per_iter().max(1.0);
        let budget_ns = measurement.as_nanos() as f64 / sample_size as f64;
        let iters = (budget_ns / per_iter_ns).clamp(1.0, 1e9) as u64;

        bencher.mode = Mode::Measure {
            samples: sample_size,
        };
        bencher.iters_per_sample = iters;
        bencher.samples_ns.clear();
        f(&mut bencher);

        let mut per_iter: Vec<f64> = bencher
            .samples_ns
            .iter()
            .map(|&ns| ns / iters as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let low = per_iter.first().copied().unwrap_or(median);
        let high = per_iter.last().copied().unwrap_or(median);

        let mut line = String::new();
        let _ = write!(
            line,
            "criterion-shim: {full_name:<60} time: [{} {} {}]",
            fmt_ns(low),
            fmt_ns(median),
            fmt_ns(high)
        );
        println!("{line}");

        if let Some(path) = &self.criterion.json_path {
            let record = format!(
                "{{\"benchmark\":{:?},\"median_ns\":{median:.1},\"low_ns\":{low:.1},\
                 \"high_ns\":{high:.1},\"samples\":{sample_size},\"iters_per_sample\":{iters}}}\n",
                full_name
            );
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = file.write_all(record.as_bytes());
            }
        }
    }
}

enum Mode {
    WarmUp { until: Duration },
    Measure { samples: usize },
}

/// Runs the closure under measurement.
pub struct Bencher {
    mode: Mode,
    iters_per_sample: u64,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine`, timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { until } => {
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < until || iters == 0 {
                    black_box(routine());
                    iters += 1;
                }
                self.iters_per_sample = iters;
                self.samples_ns
                    .push(start.elapsed().as_nanos() as f64 / iters as f64);
            }
            Mode::Measure { samples } => {
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        black_box(routine());
                    }
                    self.samples_ns.push(start.elapsed().as_nanos() as f64);
                }
            }
        }
    }

    fn warmup_ns_per_iter(&self) -> f64 {
        self.samples_ns.last().copied().unwrap_or(1.0)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion {
            quick: true,
            json_path: None,
        };
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
