//! Offline shim for serde's derive macros.
//!
//! Parses the derive input with the built-in `proc_macro` API (no `syn` /
//! `quote`, which are unavailable offline) and supports exactly the shapes
//! present in this workspace:
//!
//! * structs with named fields → JSON objects (field order preserved),
//! * tuple structs with one field (newtypes) → the inner value,
//! * tuple structs with several fields → JSON arrays,
//! * enums whose variants are all unit variants → JSON strings.
//!
//! Anything else (generics, data-carrying enum variants) produces a
//! `compile_error!` naming the unsupported construct, so a future change
//! fails loudly instead of serializing garbage.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct with the field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with the given number of fields.
    Tuple(usize),
    /// Unit struct (no fields).
    Unit,
    /// Enum whose variants are all unit variants.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips one attribute (`#` followed by a bracket group) if present.
/// Returns true when an attribute was consumed.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    *i += 2;
                    return true;
                }
            }
        }
    }
    false
}

/// Skips a visibility qualifier (`pub`, optionally followed by `(...)`).
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while skip_attr(&tokens, &mut i) {}
    skip_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item {
                    name,
                    shape: Shape::Struct(fields),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok(Item {
                    name,
                    shape: Shape::Tuple(arity),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                shape: Shape::Unit,
            }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_unit_variants(&name, g.stream())?;
                Ok(Item {
                    name,
                    shape: Shape::Enum(variants),
                })
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for a `{other}` item")),
    }
}

/// Extracts field names from a named-field struct body, skipping attributes,
/// visibility and types (commas nested in `<...>` or groups do not split).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i) {}
        skip_vis(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected a field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        // Skip the type: advance to the next top-level comma, tracking angle
        // bracket depth (type-level `< >`; groups are single token trees).
        let mut angle = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(field);
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct body (top-level commas only).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut fields = 1;
    let mut trailing_comma = false;
    for (idx, tt) in tokens.iter().enumerate() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if idx + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    fields += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    fields
}

/// Extracts variant names from an enum body, requiring every variant to be
/// a unit variant.
fn parse_unit_variants(enum_name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i) {}
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected a variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "the serde shim derive only supports unit variants; \
                     `{enum_name}::{variant}` carries data"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "the serde shim derive does not support explicit discriminants \
                     (`{enum_name}::{variant}`)"
                ));
            }
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
        variants.push(variant);
    }
    Ok(variants)
}

/// `#[derive(Serialize)]`: emits an `impl serde::Serialize` mapping the type
/// onto the shim's JSON value model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return err(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         serde::Serialize::to_json(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __fields: Vec<(String, serde::Value)> = Vec::new();\
                 {pushes}\
                 serde::Value::Object(__fields)"
            )
        }
        Shape::Tuple(1) => "serde::Serialize::to_json(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\
             fn to_json(&self) -> serde::Value {{ {body} }}\
         }}"
    )
    .parse()
    .unwrap()
}

/// `#[derive(Deserialize)]`: emits the marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return err(&e),
    };
    format!("impl serde::Deserialize for {} {{}}", item.name)
        .parse()
        .unwrap()
}
