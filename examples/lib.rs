//! Shared helpers for the runnable examples.
//!
//! Each example builds a small swarm deployment, runs one of the paper's
//! protocols end to end and prints what every agent learned. The helpers
//! here keep the examples focused on the interesting part.

use ring_protocols::{IdAssignment, Network};
use ring_sim::{Model, RingConfig};

/// Builds a reproducible random deployment: `n` agents at random positions
/// with random chirality and random identifiers drawn from `[1, 8n]`.
pub fn demo_deployment(n: usize, seed: u64) -> (RingConfig, IdAssignment) {
    let config = RingConfig::builder(n)
        .random_positions(seed)
        .random_chirality(seed + 1)
        .build()
        .expect("demo configurations are always valid");
    let ids = IdAssignment::random(n, 8 * n as u64, seed + 2);
    (config, ids)
}

/// Creates the executor for a deployment.
pub fn demo_network<'a>(config: &'a RingConfig, ids: &IdAssignment, model: Model) -> Network<'a> {
    Network::new(config, ids.clone(), model).expect("demo deployments are always valid")
}

/// Formats a fraction of the circle as a percentage with two decimals.
pub fn pct(fraction: f64) -> String {
    format!("{:6.2}%", fraction * 100.0)
}
