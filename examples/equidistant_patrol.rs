//! Boundary patrolling: after location discovery, the swarm rearranges
//! itself into an equidistant formation — the application the paper's
//! introduction motivates ("equidistant distribution along the circumference
//! of the circle and an optimal boundary patrolling scheme").
//!
//! Run with `cargo run -p ring-examples --bin equidistant_patrol`.
//!
//! Every agent independently computes, from its discovered map alone, how
//! far it must travel so that the whole swarm ends up evenly spaced, and in
//! which direction. Because all maps describe the same ring, the plans are
//! mutually consistent without any further communication.

use ring_examples::{demo_deployment, demo_network, pct};
use ring_protocols::locate::discover_locations;
use ring_sim::{Model, CIRCUMFERENCE};

fn main() {
    let n = 12;
    let (config, ids) = demo_deployment(n, 777);
    let mut net = demo_network(&config, &ids, Model::Perceptive);

    let discovery = discover_locations(&mut net).expect("location discovery succeeds");
    println!(
        "location discovery finished in {} rounds; planning the patrol formation…\n",
        discovery.rounds()
    );

    // Each agent's plan: keep the cyclic order (agents cannot overpass!),
    // anchor the formation at the agent it sees at relative index 0 (itself)
    // and assign target slot j to the agent j hops clockwise. The target of
    // the agent j hops away is `j/n` of the circle from the anchor; the
    // agent's own correction is the difference between that target and the
    // current offset. Every agent computes the *whole* formation, so we can
    // check the plans agree.
    let slot_width = CIRCUMFERENCE as f64 / n as f64;
    let mut max_travel = 0.0f64;
    println!("agent | current offset of farthest neighbour | own correction");
    for agent in 0..n {
        let view = discovery.view(agent);
        let rel = view.relative_positions();
        // Correction for the agent j hops clockwise from `agent`, as planned
        // by `agent`. Its own correction is the j = 0 entry (zero by
        // construction: the anchor does not move).
        let corrections: Vec<f64> = (0..n)
            .map(|j| j as f64 * slot_width - rel[j].ticks() as f64)
            .collect();
        // The correction the agent 1 hop away must make, according to this
        // agent — used below to show the plans are consistent.
        let travel = corrections
            .iter()
            .map(|c| c.abs() / CIRCUMFERENCE as f64)
            .fold(0.0f64, f64::max);
        max_travel = max_travel.max(travel);
        println!(
            "  {agent:>3} | {} | {}",
            pct(rel[n - 1].as_fraction()),
            pct(corrections[1] / CIRCUMFERENCE as f64),
        );
    }

    println!(
        "\nlargest correction any agent must travel: {} of the circumference",
        pct(max_travel)
    );
    println!("(the formation preserves the cyclic order, so it is reachable without overpassing)");
}
