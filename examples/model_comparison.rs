//! Model comparison: how much do idling (lazy model) and collision sensing
//! (perceptive model) help?
//!
//! Run with `cargo run -p ring-examples --bin model_comparison`.
//!
//! The same deployment is solved in every model for both parities of `n`,
//! and the measured round counts are printed next to the paper's asymptotic
//! predictions (Table I). The qualitative picture to look for:
//!
//! * odd `n` is easy everywhere (`O(log N)` coordination, `n + O(log N)`
//!   location discovery);
//! * even `n` in the basic/lazy model needs the superlinear distinguisher
//!   machinery just to break symmetry, and location discovery is outright
//!   impossible in the basic model;
//! * the perceptive model collapses the coordination cost back to
//!   `O(√n log N)` and halves the location-discovery cost.

use ring_examples::demo_deployment;
use ring_protocols::pipeline::{run_pipeline, Problem};
use ring_sim::Model;

fn main() {
    for &n in &[15usize, 16] {
        let (config, ids) = demo_deployment(n, 4242 + n as u64);
        println!(
            "\n=== n = {n} ({}), N = {} ===",
            if n % 2 == 0 { "even" } else { "odd" },
            ids.universe()
        );
        println!(
            "{:<12} {:>18} {:>18} {:>20} {:>20}",
            "model",
            "leader election",
            "nontrivial move",
            "direction agreement",
            "location discovery"
        );
        for model in [Model::Basic, Model::Lazy, Model::Perceptive] {
            let report = run_pipeline(&config, &ids, model).expect("pipeline succeeds");
            let cell = |p: Problem| {
                let c = report.cost(p).expect("measured");
                match c.rounds {
                    Some(r) => format!("{r} rounds"),
                    None => "impossible".to_string(),
                }
            };
            println!(
                "{:<12} {:>18} {:>18} {:>20} {:>20}",
                model.to_string(),
                cell(Problem::LeaderElection),
                cell(Problem::NontrivialMove),
                cell(Problem::DirectionAgreement),
                cell(Problem::LocationDiscovery),
            );
        }
    }
    println!("\n(see Table I of the paper and EXPERIMENTS.md for the full sweep)");
}
