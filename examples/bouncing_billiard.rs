//! A look at the raw physics: the event-driven engine traces every collision
//! of a single round, illustrating the bouncing dynamics that all the
//! higher-level protocols are built on (and the pass-through equivalence
//! behind the rotation-index lemma).
//!
//! Run with `cargo run -p ring-examples --bin bouncing_billiard`.

use ring_sim::prelude::*;

fn main() -> Result<(), RingError> {
    let n = 7;
    let config = RingConfig::builder(n).random_positions(99).build()?;

    // Four agents clockwise, three anticlockwise: rotation index 1.
    let directions: Vec<ObjectiveDirection> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                ObjectiveDirection::Clockwise
            } else {
                ObjectiveDirection::Anticlockwise
            }
        })
        .collect();

    println!("initial positions:");
    for (agent, p) in config.positions().iter().enumerate() {
        println!(
            "  agent {agent}: {:.4} ({})",
            p.as_fraction(),
            directions[agent]
        );
    }

    let expected = rotation_index(&directions);
    println!("\nrotation index predicted by Lemma 1: {}", expected.shift);

    let trajectory = EventEngine::new().simulate(&config, &(0..n).collect::<Vec<_>>(), &directions);
    println!(
        "\ncollisions during the round ({} in total):",
        trajectory.collisions.len()
    );
    for c in trajectory.collisions.iter().take(12) {
        println!(
            "  t = {:.4}: agents {} and {} meet at {:.4}",
            c.time, c.agents.0, c.agents.1, c.position
        );
    }
    if trajectory.collisions.len() > 12 {
        println!("  … and {} more", trajectory.collisions.len() - 12);
    }

    println!("\nfinal positions (every agent ends on some agent's initial position):");
    for (agent, p) in trajectory.final_positions.iter().enumerate() {
        println!(
            "  agent {agent}: {:.4} (first collision after travelling {:.4})",
            p,
            trajectory.first_collision[agent].unwrap_or(f64::NAN)
        );
    }

    // Cross-check against the exact analytic engine.
    let mut ring = RingState::new(&config);
    let outcome = ring.execute_round_objective(&directions, EngineKind::Analytic)?;
    println!(
        "\nanalytic engine agrees: rotation index {} and every displacement matches within 1e-6",
        outcome.rotation.shift
    );
    Ok(())
}
