//! Quickstart: ten bouncing agents on a circle discover where everybody
//! started.
//!
//! Run with `cargo run -p ring-examples --bin quickstart`.
//!
//! The agents cannot talk, cannot see, and only learn per round how far they
//! ended from where they started (plus, in the perceptive model used here,
//! the distance to their first collision). The library's location-discovery
//! pipeline — nontrivial move, direction agreement, leader election, ring
//! distances, and the `Convolution`/`Pivot` measurement schedule — lets each
//! of them reconstruct the entire initial configuration.

use ring_examples::{demo_deployment, demo_network, pct};
use ring_protocols::locate::{discover_locations, verify_location_discovery};
use ring_sim::Model;

fn main() {
    let n = 10;
    let (config, ids) = demo_deployment(n, 2015);
    let mut net = demo_network(&config, &ids, Model::Perceptive);

    println!(
        "deployment: {n} agents, identifier universe [1, {}]",
        ids.universe()
    );
    println!("hidden initial positions (ground truth, never shown to agents):");
    for (agent, position) in config.positions().iter().enumerate() {
        println!(
            "  agent {agent} (id {:>3}) at {} of the circle, chirality {}",
            ids.id(agent),
            pct(position.as_fraction()),
            config.chirality(agent),
        );
    }

    let discovery = discover_locations(&mut net).expect("location discovery succeeds");
    println!(
        "\nlocation discovery finished in {} rounds (method: {:?})",
        discovery.rounds(),
        discovery.method()
    );

    // What agent 0 now believes about the ring, expressed in its own frame.
    let view = discovery.view(0);
    println!("\nagent 0's reconstructed map (distances from its own start, own clockwise):");
    for (hops, arc) in view.relative_positions().iter().enumerate() {
        println!(
            "  neighbour {hops:>2} hops away: {}",
            pct(arc.as_fraction())
        );
    }

    let ok = verify_location_discovery(&net, &discovery);
    println!(
        "\nground-truth check: every agent's map is {}",
        if ok { "exact" } else { "WRONG" }
    );
    assert!(ok);
}
